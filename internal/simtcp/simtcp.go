// Package simtcp models TCP over the discrete-event simulator: slow
// start and congestion avoidance via a pluggable cc.Algorithm, RTT
// estimation from timestamp echoes, fast retransmit on three duplicate
// acks, retransmission timeouts with exponential backoff, receiver-side
// reassembly, and RST/blackhole failure signalling.
//
// It stands in for the Linux kernel TCP stack under the paper's Mininet
// experiments (Sec. 5.3–5.6): goodput dynamics there are produced by
// exactly these mechanisms, not by kernel implementation detail.
package simtcp

import (
	"sort"
	"time"

	"tcpls/internal/cc"
	"tcpls/internal/sim"
)

// Options configures one connection endpoint.
type Options struct {
	// MSS is the payload bytes per segment (default cc.DefaultMSS).
	MSS int
	// CC names the congestion controller ("newreno", "cubic", "vegas");
	// default newreno. Algorithm overrides it when non-nil.
	CC        string
	Algorithm cc.Algorithm
}

func (o Options) mss() int {
	if o.MSS > 0 {
		return o.MSS
	}
	return cc.DefaultMSS
}

func (o Options) algorithm() cc.Algorithm {
	if o.Algorithm != nil {
		return o.Algorithm
	}
	return cc.New(o.CC, o.mss())
}

// segment is one TCP segment in the simulator.
type segment struct {
	seq     uint64 // first byte offset
	payload []byte
	ack     uint64   // cumulative ack (always valid)
	ts      sim.Time // sender timestamp
	tsEcho  sim.Time // echoed timestamp (on acks)
	rst     bool
	fin     bool
	syn     bool // connection establishment request
	synAck  bool // connection establishment reply
	// dupData marks an ack triggered by a fully-duplicate data segment
	// (DSACK, RFC 2883): the sender must not count it as a duplicate
	// ack, or its own retransmissions would re-trigger loss recovery.
	dupData bool
	// sacks reports the receiver's out-of-order byte ranges
	// [start, end), merged and sorted (SACK, RFC 2018). The sender's
	// scoreboard uses them to retransmit exactly the holes.
	sacks [][2]uint64
}

const headerSize = 40 // IP + TCP header bytes for link accounting

// Conn is one endpoint of a simulated TCP connection.
type Conn struct {
	s    *sim.Sim
	out  *sim.Link // towards the peer
	peer *Conn     // delivery target (segments route per packet)
	mss  int
	cc   cc.Algorithm
	Name string // for experiment traces

	established bool
	failed      bool
	finSent     bool

	// Callbacks.
	OnRecv        func(p []byte)  // in-order payload delivery
	OnReset       func()          // RST received
	OnAcked       func()          // new data acked (send-progress hook)
	OnRTO         func(count int) // consecutive retransmission timeouts
	OnEstablished func()          // handshake completed

	// Sender state.
	sndUna       uint64
	sndNxt       uint64
	buf          []byte // unsent+unacked bytes, buf[0] is offset sndUna
	dupAcks      int
	recover      uint64 // recovery point: loss episode ends at this offset
	inRecovery   bool
	sacked       [][2]uint64 // scoreboard: peer-reported ooo ranges
	retxUpTo     uint64      // holes below this were already retransmitted
	retxBudget   int         // packet-conservation budget for hole retransmits
	lastHeadRetx sim.Time    // rescue-retransmission pacing
	rescueGen    int         // rescue-timer generation
	rescueSndUna uint64      // progress marker between rescue probes
	rtoCount     int         // consecutive RTOs without progress
	rtoTimer     int         // generation counter to cancel stale timers
	rtoBackoff   int
	srtt         time.Duration
	rttvar       time.Duration
	lastEcho     sim.Time // latest ts to echo back

	// Receiver state.
	rcvNxt   uint64
	ooo      map[uint64][]byte
	oooCache [][2]uint64 // merged SACK ranges, rebuilt when oooDirty
	oooDirty bool

	// Stats.
	BytesAcked    uint64
	BytesDeliverd uint64
	Retransmits   uint64
}

// Connect establishes a pair of connection endpoints across path,
// modeling a real SYN / SYN-ACK exchange: the SYN actually traverses the
// link, so connecting over a blackholed path retries with exponential
// backoff and eventually fails — the cost Fig. 9's path hunting measures.
func Connect(s *sim.Sim, path *sim.Path, clientOpts, serverOpts Options) (client, server *Conn) {
	return ConnectOn(s, path.AtoB, path.BtoA, clientOpts, serverOpts)
}

// Connect timeouts: SYN retransmission starts at synRTOBase and doubles;
// after synMaxTries the connection fails (Linux defaults are longer; the
// experiments use these to keep figure timescales readable, like
// Mininet-tuned kernels).
const (
	synRTOBase  = 1 * time.Second
	synMaxTries = 3
)

// ConnectOn establishes a connection whose segments traverse the given
// links. Several connections may share the same links — the shared-
// bottleneck topology of the Fig. 12 fairness experiment — because each
// segment routes to its own endpoint.
func ConnectOn(s *sim.Sim, toServer, toClient *sim.Link, clientOpts, serverOpts Options) (client, server *Conn) {
	client = &Conn{s: s, out: toServer, mss: clientOpts.mss(), cc: clientOpts.algorithm(), ooo: map[uint64][]byte{}, rtoBackoff: 1, Name: "client"}
	server = &Conn{s: s, out: toClient, mss: serverOpts.mss(), cc: serverOpts.algorithm(), ooo: map[uint64][]byte{}, rtoBackoff: 1, Name: "server"}
	client.peer = server
	server.peer = client

	var trySyn func(attempt int)
	trySyn = func(attempt int) {
		if client.established || client.failed {
			return
		}
		if attempt >= synMaxTries {
			client.fail()
			return
		}
		client.send(headerSize, &segment{syn: true})
		s.After(synRTOBase<<attempt, func() { trySyn(attempt + 1) })
	}
	trySyn(0)
	return client, server
}

// handleSyn runs connection establishment on both endpoints.
func (c *Conn) handleSyn(seg *segment) {
	switch {
	case seg.syn && !c.established:
		// Server side: SYN received, reply SYN-ACK, consider
		// established (the first data segment carries the final ack).
		c.established = true
		c.send(headerSize, &segment{synAck: true})
		if c.OnEstablished != nil {
			c.OnEstablished()
		}
		c.trySend()
	case seg.syn:
		c.send(headerSize, &segment{synAck: true}) // duplicate SYN
	case seg.synAck && !c.established:
		c.established = true
		if c.OnEstablished != nil {
			c.OnEstablished()
		}
		c.trySend()
	}
}

// send routes one segment to the peer endpoint over the outgoing link.
func (c *Conn) send(size int, seg *segment) bool {
	peer := c.peer
	return c.out.Send(sim.Packet{Size: size, Data: seg, Deliver: func(p sim.Packet) {
		peer.handleSegment(p.Data.(*segment))
	}})
}

// Established reports whether the handshake completed.
func (c *Conn) Established() bool { return c.established }

// Failed reports whether the connection was reset.
func (c *Conn) Failed() bool { return c.failed }

// SRTT returns the smoothed RTT estimate.
func (c *Conn) SRTT() time.Duration { return c.srtt }

// Cwnd returns the congestion window in bytes.
func (c *Conn) Cwnd() int { return c.cc.Window() }

// InFlight returns unacknowledged bytes.
func (c *Conn) InFlight() int { return int(c.sndNxt - c.sndUna) }

// Buffered returns bytes queued but not yet sent.
func (c *Conn) Buffered() int { return len(c.buf) - c.InFlight() }

// SetAlgorithm hot-swaps the congestion controller — the attachment step
// of the paper's §4.4 eBPF mechanism.
func (c *Conn) SetAlgorithm(a cc.Algorithm) { c.cc = a }

// Algorithm returns the current controller.
func (c *Conn) Algorithm() cc.Algorithm { return c.cc }

// Write queues application bytes for transmission.
func (c *Conn) Write(p []byte) {
	if c.failed {
		return
	}
	c.buf = append(c.buf, p...)
	c.trySend()
}

// Reset aborts the connection, delivering a RST to the peer (the
// Sec. 5.3 "spurious RST" injection) and failing this endpoint.
func (c *Conn) Reset() {
	if c.failed {
		return
	}
	c.fail()
	c.send(headerSize, &segment{rst: true})
}

func (c *Conn) fail() {
	if c.failed {
		return
	}
	c.failed = true
	c.rtoTimer++ // cancel pending timers
	if c.OnReset != nil {
		c.OnReset()
	}
}

// sackedBytes returns the scoreboard total.
func (c *Conn) sackedBytes() int {
	total := 0
	for _, r := range c.sacked {
		total += int(r[1] - r[0])
	}
	return total
}

// pipe estimates bytes actually in the network: in-flight minus what the
// peer reported as received out of order (RFC 6675's pipe).
func (c *Conn) pipe() int {
	p := c.InFlight() - c.sackedBytes()
	if p < 0 {
		p = 0
	}
	return p
}

// isSacked reports whether [seq, seq+n) is fully covered by a SACK range.
func (c *Conn) isSacked(seq uint64, n int) bool {
	for _, r := range c.sacked {
		if seq >= r[0] && seq+uint64(n) <= r[1] {
			return true
		}
	}
	return false
}

// trySend transmits as much as flow state allows: hole retransmissions
// first (during recovery), then new data, both bounded by cwnd - pipe.
func (c *Conn) trySend() {
	if !c.established || c.failed {
		return
	}
	hadFlight := c.InFlight() > 0
	// Retransmit scoreboard holes under packet conservation: each ack
	// that reports delivery (cumulative advance or new SACKed bytes)
	// funds an equal amount of retransmission, so recovery keeps the
	// ack clock without re-bursting into the queue that just overflowed.
	if c.inRecovery && c.retxBudget > 0 {
		high := uint64(0)
		if len(c.sacked) > 0 {
			high = c.sacked[len(c.sacked)-1][1]
		}
		spent := c.retxBudget - c.retransmitHoles(c.retxBudget, high)
		c.retxBudget -= spent
	}
	// New data. Outside recovery, bounded by cwnd. During recovery,
	// only the delivery-funded budget left over after hole retransmits
	// may be spent on new data (packet conservation keeps the ack clock
	// alive without re-bursting).
	for {
		if c.inRecovery && c.retxBudget <= 0 {
			break
		}
		flight := c.InFlight()
		avail := len(c.buf) - flight
		if avail <= 0 || flight >= c.cc.Window() {
			break
		}
		n := avail
		if n > c.mss {
			n = c.mss
		}
		if flight+n > c.cc.Window() {
			n = c.cc.Window() - flight
			if n <= 0 {
				break
			}
		}
		if c.inRecovery {
			if n > c.retxBudget {
				n = c.retxBudget
			}
			c.retxBudget -= n
		}
		payload := append([]byte(nil), c.buf[flight:flight+n]...)
		seg := &segment{
			seq:     c.sndNxt,
			payload: payload,
			ack:     c.rcvNxt,
			ts:      c.s.Now(),
			tsEcho:  c.lastEcho,
			sacks:   c.oooRanges(),
		}
		c.sndNxt += uint64(n)
		c.send(n+headerSize, seg)
	}
	if !hadFlight && c.InFlight() > 0 {
		c.armRTO()
	}
}

// rto computes the current retransmission timeout.
func (c *Conn) rto() time.Duration {
	base := c.srtt + 4*c.rttvar
	if base < 200*time.Millisecond {
		base = 200 * time.Millisecond
	}
	return base * time.Duration(c.rtoBackoff)
}

func (c *Conn) armRTO() {
	c.rtoTimer++
	gen := c.rtoTimer
	c.s.After(c.rto(), func() { c.onRTO(gen) })
}

func (c *Conn) onRTO(gen int) {
	if gen != c.rtoTimer || c.failed {
		return // superseded by progress
	}
	if c.InFlight() == 0 {
		return
	}
	c.cc.OnRTO(c.s.Now())
	c.rtoBackoff *= 2
	if c.rtoBackoff > 64 {
		c.rtoBackoff = 64
	}
	c.rtoCount++
	if c.OnRTO != nil {
		c.OnRTO(c.rtoCount)
	}
	if c.failed {
		return // OnRTO hook may have reset the connection
	}
	c.inRecovery = false
	c.dupAcks = 0
	c.sacked = nil
	// Go-back-N: rewind and retransmit from sndUna.
	c.sndNxt = c.sndUna
	c.Retransmits++
	c.trySend()
	if c.InFlight() > 0 {
		c.armRTO()
	}
}

// retransmitHoles walks the scoreboard from retxUpTo up to high
// (clamped to the recovery point), retransmitting unsacked ranges within
// the byte budget. It returns the unspent budget.
func (c *Conn) retransmitHoles(budget int, high uint64) int {
	// Only data sent before this loss episode is eligible: bytes above
	// the recovery point are in flight, not lost — without this bound
	// every fresh segment would be blanket-retransmitted.
	if high > c.recover {
		high = c.recover
	}
	if c.retxUpTo < c.sndUna {
		c.retxUpTo = c.sndUna
	}
	for c.retxUpTo < high && budget > 0 {
		n := c.mss
		if rem := int(high - c.retxUpTo); rem < n {
			n = rem
		}
		if avail := len(c.buf) - int(c.retxUpTo-c.sndUna); n > avail {
			n = avail
		}
		if n <= 0 {
			break
		}
		if !c.isSacked(c.retxUpTo, n) {
			off := int(c.retxUpTo - c.sndUna)
			payload := append([]byte(nil), c.buf[off:off+n]...)
			seg := &segment{
				seq:     c.retxUpTo,
				payload: payload,
				ack:     c.rcvNxt,
				ts:      c.s.Now(),
				tsEcho:  c.lastEcho,
				sacks:   c.oooRanges(),
			}
			c.Retransmits++
			c.send(n+headerSize, seg)
			budget -= n
		}
		c.retxUpTo += uint64(n)
	}
	return budget
}

// enterRecovery starts a fast-recovery episode: one congestion-window
// reduction per episode, retransmission of the head segment, then
// scoreboard-driven hole filling.
func (c *Conn) enterRecovery() {
	c.inRecovery = true
	c.recover = c.sndNxt
	c.retxUpTo = c.sndUna
	c.rescueSndUna = c.sndUna
	c.retxBudget = 3 * c.mss // initial burst, then packet conservation
	c.cc.OnLoss(c.s.Now())
	c.retransmitFirst()
	c.trySend()
	c.armRescue()
}

// armRescue schedules a probe retransmission (a tail-loss-probe-like
// timer): retransmissions sent into a full queue are themselves dropped,
// and once the in-flight data drains no acks arrive to trigger recovery
// progress — without this probe only the (much longer, backed-off) RTO
// would resolve the stall.
func (c *Conn) armRescue() {
	c.rescueGen++
	gen := c.rescueGen
	gate := 2 * c.srtt
	if gate < 20*time.Millisecond {
		gate = 20 * time.Millisecond
	}
	c.s.After(gate, func() { c.onRescue(gen) })
}

func (c *Conn) onRescue(gen int) {
	if gen != c.rescueGen || c.failed || !c.inRecovery {
		return
	}
	// Only act when the recovery is genuinely stalled: no cumulative
	// progress since the previous probe. A stalled recovery means the
	// retransmissions themselves were lost, or a dropped burst tail
	// left no SACKs to walk — refill the whole unsacked region below
	// the recovery point, a window's worth per probe. When progress is
	// happening, the SACK walk is doing its job; probing would only
	// inject duplicates.
	if c.InFlight() > 0 && c.sndUna == c.rescueSndUna {
		c.lastHeadRetx = c.s.Now()
		if !c.isSacked(c.sndUna, 1) {
			c.retransmitFirst()
		}
		c.retxUpTo = c.sndUna
		budget := c.cc.Window()
		c.retransmitHoles(budget, c.sndUna+uint64(budget))
		c.retxBudget = 0
	}
	c.rescueSndUna = c.sndUna
	c.armRescue()
}

// retransmitFirst resends the segment at sndUna (fast retransmit).
func (c *Conn) retransmitFirst() {
	n := len(c.buf)
	if n > c.mss {
		n = c.mss
	}
	if n == 0 {
		return
	}
	payload := append([]byte(nil), c.buf[:n]...)
	seg := &segment{
		seq:     c.sndUna,
		payload: payload,
		ack:     c.rcvNxt,
		ts:      c.s.Now(),
		tsEcho:  c.lastEcho,
		sacks:   c.oooRanges(),
	}
	c.Retransmits++
	c.send(n+headerSize, seg)
}

func (c *Conn) sendAck(dupData bool) {
	seg := &segment{
		seq:     c.sndNxt,
		ack:     c.rcvNxt,
		ts:      c.s.Now(),
		tsEcho:  c.lastEcho,
		dupData: dupData,
		sacks:   c.oooRanges(),
	}
	c.send(headerSize, seg)
}

// oooRanges reports the receiver's buffered out-of-order data as merged
// SACK ranges. The list is maintained incrementally on insert and drain:
// with sequential arrivals behind a hole the common case is an O(1)
// extension of the last range.
func (c *Conn) oooRanges() [][2]uint64 { return c.oooCache }

// oooInsert merges [start, end) into the sorted range list.
func (c *Conn) oooInsert(start, end uint64) {
	rs := c.oooCache
	// Fast path: extend or append after the last range.
	if n := len(rs); n == 0 || start > rs[n-1][1] {
		c.oooCache = append(rs, [2]uint64{start, end})
		return
	} else if start == rs[n-1][1] {
		rs[n-1][1] = end
		return
	}
	// General path: binary search for the first overlapping or later range.
	lo := sort.Search(len(rs), func(i int) bool { return rs[i][1] >= start })
	hi := lo
	for hi < len(rs) && rs[hi][0] <= end {
		if rs[hi][0] < start {
			start = rs[hi][0]
		}
		if rs[hi][1] > end {
			end = rs[hi][1]
		}
		hi++
	}
	out := append(rs[:lo:lo], [2]uint64{start, end})
	c.oooCache = append(out, rs[hi:]...)
}

// oooTrim drops range bytes below rcvNxt after a drain.
func (c *Conn) oooTrim() {
	rs := c.oooCache
	i := 0
	for i < len(rs) && rs[i][1] <= c.rcvNxt {
		i++
	}
	rs = rs[i:]
	if len(rs) > 0 && rs[0][0] < c.rcvNxt {
		rs[0][0] = c.rcvNxt
	}
	c.oooCache = rs
}

// handleSegment processes one arriving segment.
func (c *Conn) handleSegment(seg *segment) {
	if c.failed {
		return
	}
	if seg.rst {
		c.fail()
		return
	}
	if seg.syn || seg.synAck {
		c.handleSyn(seg)
		return
	}
	// RTT sample from the echoed timestamp.
	if seg.tsEcho > 0 {
		sample := time.Duration(c.s.Now() - seg.tsEcho)
		if sample > 0 {
			if c.srtt == 0 {
				c.srtt = sample
				c.rttvar = sample / 2
			} else {
				d := c.srtt - sample
				if d < 0 {
					d = -d
				}
				c.rttvar = (3*c.rttvar + d) / 4
				c.srtt = (7*c.srtt + sample) / 8
			}
		}
	}

	// The scoreboard mirrors the receiver's current out-of-order state:
	// links are FIFO, so the latest segment is authoritative and simply
	// replaces it (empty means the receiver has no holes).
	prevSacked := c.sackedBytes()
	prevUna := c.sndUna
	c.sacked = seg.sacks
	// SACK-based loss detection (RFC 6675): three segments' worth of
	// out-of-order data means the head segment is lost; no need to
	// count duplicate acks.
	if !c.inRecovery && c.sackedBytes() >= 3*c.mss && c.InFlight() > 0 {
		c.enterRecovery()
	}
	c.processAck(seg)
	if c.inRecovery {
		delivered := int(c.sndUna - prevUna)
		if ds := c.sackedBytes() - prevSacked; ds > 0 {
			delivered += ds
		}
		if delivered > 0 {
			c.retxBudget += delivered
			c.trySend()
		}
	}

	if len(seg.payload) > 0 {
		c.processData(seg)
	}
}

// mergeRanges sorts and merges [start, end) ranges.
func mergeRanges(rs [][2]uint64) [][2]uint64 {
	if len(rs) <= 1 {
		return rs
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i][0] < rs[j][0] })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r[0] <= last[1] {
			if r[1] > last[1] {
				last[1] = r[1]
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

func (c *Conn) processAck(seg *segment) {
	switch {
	case seg.ack > c.sndUna:
		acked := int(seg.ack - c.sndUna)
		c.sndUna = seg.ack
		if c.sndNxt < c.sndUna {
			// An RTO rewound sndNxt while old segments were still in
			// flight; their acks can overtake the rewound point.
			c.sndNxt = c.sndUna
		}
		c.buf = c.buf[acked:]
		c.BytesAcked += uint64(acked)
		c.dupAcks = 0
		c.rtoBackoff = 1
		c.rtoCount = 0
		if c.inRecovery && seg.ack >= c.recover {
			c.inRecovery = false
		}
		sample := time.Duration(0)
		if seg.tsEcho > 0 {
			sample = time.Duration(c.s.Now() - seg.tsEcho)
		}
		c.cc.OnAck(acked, sample, c.s.Now())
		if c.InFlight() > 0 {
			c.armRTO()
		} else {
			c.rtoTimer++ // cancel
		}
		c.trySend()
		if c.OnAcked != nil {
			c.OnAcked()
		}
	case seg.ack == c.sndUna && c.InFlight() > 0 && len(seg.payload) == 0 && !seg.dupData:
		c.dupAcks++
		if c.dupAcks == 3 && !c.inRecovery {
			c.enterRecovery()
		}
	}
}

func (c *Conn) processData(seg *segment) {
	c.lastEcho = seg.ts
	dupData := false
	switch {
	case seg.seq == c.rcvNxt:
		c.deliver(seg.payload)
		c.drainOOO()
	case seg.seq > c.rcvNxt:
		if _, dup := c.ooo[seg.seq]; !dup {
			c.ooo[seg.seq] = append([]byte(nil), seg.payload...)
			c.oooInsert(seg.seq, seg.seq+uint64(len(seg.payload)))
		} else {
			dupData = true
		}
	default:
		// Retransmission overlap. Deliver any new suffix, flag the rest
		// as duplicate (DSACK).
		end := seg.seq + uint64(len(seg.payload))
		if end > c.rcvNxt {
			c.deliver(seg.payload[c.rcvNxt-seg.seq:])
			c.drainOOO()
		} else {
			dupData = true
		}
	}
	c.sendAck(dupData)
}

// drainOOO delivers buffered out-of-order data that rcvNxt has reached
// or passed, including entries that overlap rcvNxt (misaligned
// retransmissions), and purges entries made obsolete by the advance.
func (c *Conn) drainOOO() {
	defer c.oooTrim()
	for {
		progressed := false
		for seq, p := range c.ooo {
			end := seq + uint64(len(p))
			switch {
			case end <= c.rcvNxt:
				delete(c.ooo, seq) // fully stale
				progressed = true
			case seq <= c.rcvNxt:
				c.deliver(p[c.rcvNxt-seq:])
				delete(c.ooo, seq)
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

func (c *Conn) deliver(p []byte) {
	c.rcvNxt += uint64(len(p))
	c.BytesDeliverd += uint64(len(p))
	if c.OnRecv != nil {
		c.OnRecv(p)
	}
}
