package simtcp

import (
	"fmt"
	"testing"
	"time"

	"tcpls/internal/sim"
)

// faultOrderRun drives two concurrent connections on two links, injects
// a blackhole on one path and an RST on the other at the SAME virtual
// tick, and returns a serialized log of every observable event in
// delivery order. The event queue breaks same-time ties by insertion
// seq (FIFO), so the log must be identical run after run — the property
// every seed-reproducible fleet campaign rests on.
func faultOrderRun() []string {
	s := sim.New()
	var log []string
	note := func(format string, args ...interface{}) {
		log = append(log, fmt.Sprintf("%8dus %s", s.Now().Microseconds(), fmt.Sprintf(format, args...)))
	}

	pathA := sim.NewPath(s, mbps(40), 2*time.Millisecond)
	pathB := sim.NewPath(s, mbps(40), 2*time.Millisecond)
	clA, svA := Connect(s, pathA, Options{}, Options{})
	clB, svB := Connect(s, pathB, Options{}, Options{})

	for name, c := range map[string]*Conn{"clA": clA, "svA": svA, "clB": clB, "svB": svB} {
		name, c := name, c
		c.OnRecv = func(p []byte) { note("%s recv %d", name, len(p)) }
		c.OnReset = func() { note("%s reset", name) }
	}

	// Both senders stream steadily so segments are in flight when the
	// faults land.
	payload := make([]byte, 32<<10)
	s.After(10*time.Millisecond, func() { clA.Write(payload); clB.Write(payload) })

	// The contested tick: blackhole path A and RST connection B at the
	// exact same virtual time. Whatever interleaving the queue picks, it
	// must pick it every run.
	at := 15 * time.Millisecond
	s.At(at, func() { note("fault: blackhole A"); pathA.SetDown(true) })
	s.At(at, func() { note("fault: rst B"); clB.Reset() })
	s.At(at+800*time.Millisecond, func() { note("fault: restore A"); pathA.SetDown(false) })

	s.RunUntil(3 * time.Second)
	note("end clA=%v svA_delivered=%d svB_delivered=%d",
		clA.Failed(), pathA.AtoB.Delivered, pathB.AtoB.Delivered)
	return log
}

// TestFaultInjectionOrderDeterministic asserts repeated-run equality of
// the full event log under same-tick blackhole + RST on concurrent
// links: the (at, seq) FIFO tiebreaker makes fault application and
// every downstream retransmission/reset schedule replay exactly.
func TestFaultInjectionOrderDeterministic(t *testing.T) {
	// The map over conns in faultOrderRun randomizes callback
	// installation order on purpose: determinism must come from the
	// event queue, not from accidental setup ordering.
	base := faultOrderRun()
	if len(base) < 10 {
		t.Fatalf("implausibly quiet run: %d events\n%v", len(base), base)
	}
	for run := 1; run <= 4; run++ {
		got := faultOrderRun()
		if len(got) != len(base) {
			t.Fatalf("run %d: %d events, first run had %d", run, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("run %d diverges at event %d:\n  first: %s\n  this:  %s", run, i, base[i], got[i])
			}
		}
	}
}

// TestSameTickFaultFIFO pins the tiebreaker itself at the sim layer:
// two same-time events fire in scheduling order, and a link taken down
// in the first loses a packet the second would have delivered.
func TestSameTickFaultFIFO(t *testing.T) {
	s := sim.New()
	l := &sim.Link{Sim: s, RateBps: mbps(100), Delay: time.Millisecond}
	delivered := 0
	l.Deliver = func(sim.Packet) { delivered++ }
	if !l.Send(sim.Packet{Size: 1000}) {
		t.Fatal("send refused")
	}
	arrival := s.Now() + time.Millisecond + 80*time.Microsecond
	var order []string
	s.At(arrival, func() { order = append(order, "down"); l.Down = true })
	s.At(arrival, func() { order = append(order, "up"); l.Down = false })
	s.RunUntil(time.Second)
	if want := []string{"down", "up"}; len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("same-tick order = %v, want %v", order, want)
	}
	// The packet arrived at the same tick but was scheduled before both
	// faults, so it beats them (lower seq) and is delivered.
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (packet event has the lowest seq at its tick)", delivered)
	}
}
