package record

import (
	"bytes"
	"testing"

	"tcpls/internal/wire"
)

// FuzzDeframerAliasing drives the deframer's zero-copy view mode the way
// readLoop does: one reused read buffer, Feed on a prefix of it, drain
// every complete record, Compact, then overwrite the buffer with the
// next read. Records drained before Compact alias the read buffer, so
// any internalization bug (a view tail not copied, an offset carried
// across Feeds) shows up as reassembled records differing from the
// original stream — or as a panic on a short slice.
//
// The fuzz input is interpreted as a segmentation script: each byte is
// the length of the next "TCP read" (mod the remaining stream), which
// reproduces the paper's §2 observation that middleboxes resegment at
// will and the deframer must tolerate every split.
func FuzzDeframerAliasing(f *testing.F) {
	f.Add([]byte{5})
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{0, 255, 3, 7})
	f.Add(bytes.Repeat([]byte{13}, 40))

	// A fixed stream of plaintext-framed pseudo-records: outer header
	// with TLS AppData type plus a sized body the deframer treats as
	// ciphertext (it never decrypts; only framing matters here).
	var stream []byte
	var want [][]byte
	for i, size := range []int{0, 1, 80, 500, 19, 1200, 2, 333} {
		body := bytes.Repeat([]byte{byte(i + 1)}, size)
		rec := []byte{ContentTypeApplicationData, 0x03, 0x03}
		rec = wire.AppendUint16(rec, uint16(len(body)))
		rec = append(rec, body...)
		stream = append(stream, rec...)
		want = append(want, rec)
	}

	f.Fuzz(func(t *testing.T, script []byte) {
		var d Deframer
		readBuf := make([]byte, 600) // smaller than the largest record: forces buffered-path splits
		var got [][]byte
		off := 0
		step := 0
		for off < len(stream) {
			n := 1
			if step < len(script) {
				n = int(script[step]) % len(readBuf)
				step++
			}
			if n == 0 {
				n = 1
			}
			if rem := len(stream) - off; n > rem {
				n = rem
			}
			// Simulate the kernel read into the reused buffer. Poison the
			// tail beyond the read so stale bytes from the previous
			// iteration cannot masquerade as valid data.
			copy(readBuf, stream[off:off+n])
			for i := n; i < len(readBuf); i++ {
				readBuf[i] = 0xee
			}
			off += n
			d.Feed(readBuf[:n])
			for {
				rec, ok, err := d.Next()
				if err != nil {
					t.Fatalf("Next: %v", err)
				}
				if !ok {
					break
				}
				// rec aliases readBuf until Compact — copy like a consumer
				// that retains the record past the next read.
				got = append(got, append([]byte(nil), rec...))
			}
			// The contract under test: Compact must internalize any view
			// tail before the caller reuses its read buffer.
			d.Compact()
		}
		if len(got) != len(want) {
			t.Fatalf("reassembled %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("record %d corrupted by buffer reuse:\n got  %x\n want %x", i, got[i], want[i])
			}
		}
		if d.Buffered() != 0 {
			t.Fatalf("%d stray bytes buffered after full stream", d.Buffered())
		}
	})
}
