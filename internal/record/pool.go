package record

import (
	"sync"
	"sync/atomic"
)

// Buf is one pooled, refcounted payload buffer. The datapath retains a
// copy of every sealed record's payload while failover may replay it;
// pooling those copies removes the dominant per-record allocation on
// the send hot path. A Buf starts with one reference; Retain adds one
// (redundant PickAll scheduling shares a single copy across replicas)
// and Release drops one, returning the buffer to its pool at zero.
//
// Ownership rule: whoever holds a reference may read Bytes; once the
// last reference is released the storage may be handed to an unrelated
// record, so a released Buf must never be read again (DESIGN.md §16).
type Buf struct {
	data []byte
	refs atomic.Int32
	pool *BufferPool
}

// Bytes returns the buffer's payload. Valid only while the caller holds
// a reference.
func (b *Buf) Bytes() []byte { return b.data }

// Retain adds a reference and returns b for chaining.
func (b *Buf) Retain() *Buf {
	b.refs.Add(1)
	return b
}

// Release drops one reference; the last release returns the buffer to
// the pool. nil-safe so callers can release optional buffers blindly.
func (b *Buf) Release() {
	if b == nil {
		return
	}
	switch n := b.refs.Add(-1); {
	case n == 0:
		b.pool.put(b)
	case n < 0:
		panic("record: Buf released more often than retained")
	}
}

// BufferPool is a sync.Pool-backed arena of record-payload buffers
// (MaxPlaintextLen capacity each, the largest payload a record can
// carry). It counts logical gets and puts so owners can assert balance:
// at session close every buffer handed out must have been released
// (gets == puts), which is exactly the "no recycled buffer is ever held
// past its release" invariant the chaos campaigns exercise.
type BufferPool struct {
	bufs sync.Pool
	gets atomic.Uint64
	puts atomic.Uint64
}

// NewBufferPool builds an empty arena.
func NewBufferPool() *BufferPool {
	p := &BufferPool{}
	p.bufs.New = func() any {
		return &Buf{data: make([]byte, 0, MaxPlaintextLen), pool: p}
	}
	return p
}

// Get returns a buffer of length n holding one reference. Buffers are
// recycled storage: the contents are arbitrary until written.
func (p *BufferPool) Get(n int) *Buf {
	b := p.bufs.Get().(*Buf)
	if cap(b.data) < n {
		b.data = make([]byte, n)
	} else {
		b.data = b.data[:n]
	}
	b.refs.Store(1)
	p.gets.Add(1)
	return b
}

// Copy returns a pooled buffer holding a copy of payload.
func (p *BufferPool) Copy(payload []byte) *Buf {
	b := p.Get(len(payload))
	copy(b.data, payload)
	return b
}

func (p *BufferPool) put(b *Buf) {
	p.puts.Add(1)
	p.bufs.Put(b)
}

// Stats reports the pool's logical get/put counters.
func (p *BufferPool) Stats() (gets, puts uint64) {
	return p.gets.Load(), p.puts.Load()
}

// Balanced reports whether every buffer handed out has been released.
func (p *BufferPool) Balanced() bool {
	gets, puts := p.Stats()
	return gets == puts
}
