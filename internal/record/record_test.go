package record

import (
	"bytes"
	"testing"
	"testing/quick"

	"tcpls/internal/wire"
)

func testSecret(tag byte) []byte {
	s := make([]byte, 32)
	for i := range s {
		s[i] = tag
	}
	return s
}

func newTestContext(t testing.TB, streamID uint32) *StreamContext {
	t.Helper()
	suite, err := SuiteByID(TLSAES128GCMSHA256)
	if err != nil {
		t.Fatal(err)
	}
	key, iv := DeriveTrafficKeys(suite, testSecret(0x42))
	c, err := NewStreamContext(suite, key, iv, streamID)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// sendRecv builds a matched sender/receiver context pair for a stream.
func sendRecv(t testing.TB, streamID uint32) (*StreamContext, *StreamContext) {
	return newTestContext(t, streamID), newTestContext(t, streamID)
}

func TestSealOpenRoundTrip(t *testing.T) {
	send, recv := sendRecv(t, 0)
	for i := 0; i < 10; i++ {
		msg := []byte("hello tcpls record layer")
		rec, err := send.Seal(nil, ContentTypeApplicationData, msg, 0)
		if err != nil {
			t.Fatal(err)
		}
		ct, content, err := recv.Open(rec)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if ct != ContentTypeApplicationData {
			t.Fatalf("content type = %d", ct)
		}
		if !bytes.Equal(content, msg) {
			t.Fatalf("content mismatch: %q", content)
		}
	}
}

func TestWireFormatLooksLikeTLS13(t *testing.T) {
	send, _ := sendRecv(t, 3)
	rec, err := send.Seal(nil, ContentTypeHandshake, []byte("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Outer header must always claim ApplicationData over TLS 1.2,
	// regardless of the inner content type: middleboxes must not be able
	// to distinguish TCPLS control records from TLS AppData.
	if rec[0] != ContentTypeApplicationData {
		t.Errorf("outer type = %d, want 23", rec[0])
	}
	if rec[1] != 0x03 || rec[2] != 0x03 {
		t.Errorf("legacy version = %x %x, want 0303", rec[1], rec[2])
	}
	if got := int(wire.Uint16(rec[3:5])); got != len(rec)-HeaderLen {
		t.Errorf("length field = %d, want %d", got, len(rec)-HeaderLen)
	}
}

func TestPaddingHidesLength(t *testing.T) {
	send, recv := sendRecv(t, 0)
	rec1, err := send.Seal(nil, ContentTypeApplicationData, []byte("ab"), 256)
	if err != nil {
		t.Fatal(err)
	}
	send2, recv2 := sendRecv(t, 0)
	rec2, err := send2.Seal(nil, ContentTypeApplicationData, bytes.Repeat([]byte("c"), 200), 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec1) != len(rec2) {
		t.Errorf("padded records differ in size: %d vs %d", len(rec1), len(rec2))
	}
	_, content, err := recv.Open(rec1)
	if err != nil {
		t.Fatal(err)
	}
	if string(content) != "ab" {
		t.Errorf("padding not stripped: %q", content)
	}
	if _, content, err = recv2.Open(rec2); err != nil || len(content) != 200 {
		t.Errorf("padded open: len=%d err=%v", len(content), err)
	}
}

func TestSequenceNumberMismatchFails(t *testing.T) {
	send, recv := sendRecv(t, 0)
	rec1, _ := send.Seal(nil, ContentTypeApplicationData, []byte("one"), 0)
	rec2, _ := send.Seal(nil, ContentTypeApplicationData, []byte("two"), 0)
	// Delivering record 2 first must fail: the receiver expects seq 0.
	if _, _, err := recv.Open(append([]byte(nil), rec2...)); err == nil {
		t.Fatal("out-of-sequence record accepted")
	}
	// In-order delivery still works because Open did not consume a
	// sequence number on failure.
	if _, _, err := recv.Open(rec1); err != nil {
		t.Fatalf("in-order record rejected after failed open: %v", err)
	}
}

func TestStreamIVDerivationFig2(t *testing.T) {
	// Stream 0's context must be bit-identical to the plain TLS 1.3
	// context; other streams must differ only in the left 32 IV bits.
	c0 := newTestContext(t, 0)
	c7 := newTestContext(t, 7)
	if !bytes.Equal(c0.iv[4:], c7.iv[4:]) {
		t.Error("right 64 bits of IV must be stream independent")
	}
	left0 := wire.Uint32(c0.iv[:4])
	left7 := wire.Uint32(c7.iv[:4])
	if left7 != left0+7 {
		t.Errorf("left IV bits: got %#x, want %#x + 7", left7, left0)
	}
}

func TestNonceUniquenessAcrossStreamsAndSeqs(t *testing.T) {
	// Every (stream, seq) pair must map to a unique nonce — the security
	// core of the Fig. 2 construction.
	seen := make(map[[12]byte]string)
	for _, sid := range []uint32{0, 1, 2, 100, 1 << 20} {
		c := newTestContext(t, sid)
		for seq := uint64(0); seq < 64; seq++ {
			n := [12]byte(c.nonce(seq))
			if prev, dup := seen[n]; dup {
				t.Fatalf("nonce collision: stream %d seq %d vs %s", sid, seq, prev)
			}
			seen[n] = ""
		}
	}
}

func TestCrossStreamDecryptFails(t *testing.T) {
	send, _ := sendRecv(t, 1)
	recvOther := newTestContext(t, 2)
	rec, _ := send.Seal(nil, ContentTypeApplicationData, []byte("stream 1 data"), 0)
	if _, _, err := recvOther.Open(rec); err == nil {
		t.Fatal("record for stream 1 opened under stream 2's context")
	}
}

func TestMaxRecordSize(t *testing.T) {
	send, recv := sendRecv(t, 0)
	big := make([]byte, MaxPlaintextLen)
	rec, err := send.Seal(nil, ContentTypeApplicationData, big, 0)
	if err != nil {
		t.Fatalf("max-size record rejected: %v", err)
	}
	if len(rec) > MaxRecordLen {
		t.Fatalf("record exceeds MaxRecordLen: %d", len(rec))
	}
	if _, content, err := recv.Open(rec); err != nil || len(content) != MaxPlaintextLen {
		t.Fatalf("open max record: len=%d err=%v", len(content), err)
	}
	if _, err := send.Seal(nil, ContentTypeApplicationData, make([]byte, MaxPlaintextLen+1), 0); err != ErrRecordTooLarge {
		t.Fatalf("oversized record: err=%v, want ErrRecordTooLarge", err)
	}
}

func TestSealSeqReplay(t *testing.T) {
	send, recv := sendRecv(t, 0)
	orig, _ := send.Seal(nil, ContentTypeApplicationData, []byte("replay me"), 0)
	// Re-encrypting the same content at the same seq must reproduce the
	// exact ciphertext (deterministic AEAD given nonce), and must not
	// disturb the live sequence counter.
	replay, err := send.SealSeq(nil, 0, ContentTypeApplicationData, []byte("replay me"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, replay) {
		t.Fatal("SealSeq did not reproduce original ciphertext")
	}
	if send.Seq() != 1 {
		t.Fatalf("SealSeq advanced live seq to %d", send.Seq())
	}
	if _, _, err := recv.Open(replay); err != nil {
		t.Fatal(err)
	}
}

func TestChaChaSuiteRoundTrip(t *testing.T) {
	suite, err := SuiteByID(TLSCHACHA20POLY1305SHA256)
	if err != nil {
		t.Fatal(err)
	}
	key, iv := DeriveTrafficKeys(suite, testSecret(9))
	send, _ := NewStreamContext(suite, key, iv, 5)
	recv, _ := NewStreamContext(suite, key, iv, 5)
	rec, err := send.Seal(nil, ContentTypeApplicationData, []byte("chacha"), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, content, err := recv.Open(rec)
	if err != nil || string(content) != "chacha" {
		t.Fatalf("content=%q err=%v", content, err)
	}
}

func TestUnknownSuite(t *testing.T) {
	if _, err := SuiteByID(0x1399); err == nil {
		t.Fatal("unknown suite accepted")
	}
}

func TestQuickRecordRoundTrip(t *testing.T) {
	suite, _ := SuiteByID(TLSAES128GCMSHA256)
	key, iv := DeriveTrafficKeys(suite, testSecret(1))
	f := func(payload []byte, streamID uint32, padTo uint16) bool {
		pad := int(padTo) % MaxPlaintextLen
		if max := MaxPlaintextLen - pad; len(payload) > max {
			payload = payload[:max]
		}
		send, err := NewStreamContext(suite, key, iv, streamID)
		if err != nil {
			return false
		}
		recv, _ := NewStreamContext(suite, key, iv, streamID)
		rec, err := send.Seal(nil, ContentTypeApplicationData, payload, pad)
		if err != nil {
			return false
		}
		_, content, err := recv.Open(rec)
		return err == nil && bytes.Equal(content, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTamperedRecordRejected(t *testing.T) {
	send, _ := sendRecv(t, 0)
	rec, _ := send.Seal(nil, ContentTypeApplicationData, []byte("payload payload payload"), 0)
	f := func(pos uint16, bit uint8) bool {
		recv := newTestContext(t, 0)
		tampered := append([]byte(nil), rec...)
		tampered[int(pos)%len(tampered)] ^= 1 << (bit % 8)
		_, _, err := recv.Open(tampered)
		// Header tampering may flip the length field; any failure mode
		// is acceptable as long as the record is not accepted as valid
		// with different bytes.
		if err == nil {
			return bytes.Equal(tampered, rec)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrailingContentPreservedForZeroCopy(t *testing.T) {
	// The paper's zero-copy design puts control data at the end of the
	// record so the receiver can truncate it after an in-place decrypt.
	// Verify Open returns content aliasing the record's storage.
	send, recv := sendRecv(t, 0)
	msg := bytes.Repeat([]byte("z"), 1000)
	rec, _ := send.Seal(nil, ContentTypeApplicationData, msg, 0)
	_, content, err := recv.Open(rec)
	if err != nil {
		t.Fatal(err)
	}
	if &content[0] != &rec[HeaderLen] {
		t.Error("Open did not decrypt in place (zero-copy violated)")
	}
}
