package record

import (
	"bytes"
	"fmt"
	"testing"
)

// demuxPair builds a sender-side set of contexts and a receiver Demux
// with matching contexts for the given stream IDs.
func demuxPair(t testing.TB, streamIDs ...uint32) (map[uint32]*StreamContext, *Demux) {
	t.Helper()
	senders := make(map[uint32]*StreamContext, len(streamIDs))
	demux := &Demux{}
	for _, id := range streamIDs {
		senders[id] = newTestContext(t, id)
		demux.Attach(newTestContext(t, id))
	}
	return senders, demux
}

func TestDemuxSingleStream(t *testing.T) {
	senders, demux := demuxPair(t, 0)
	rec, _ := senders[0].Seal(nil, ContentTypeApplicationData, []byte("solo"), 0)
	id, _, content, err := demux.Open(rec)
	if err != nil || id != 0 || string(content) != "solo" {
		t.Fatalf("id=%d content=%q err=%v", id, content, err)
	}
}

func TestDemuxInterleavedStreams(t *testing.T) {
	senders, demux := demuxPair(t, 1, 2, 3)
	schedule := []uint32{1, 1, 2, 3, 3, 3, 1, 2, 2, 1}
	for i, sid := range schedule {
		msg := []byte(fmt.Sprintf("stream %d msg %d", sid, i))
		rec, err := senders[sid].Seal(nil, ContentTypeApplicationData, msg, 0)
		if err != nil {
			t.Fatal(err)
		}
		id, _, content, err := demux.Open(rec)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if id != sid {
			t.Fatalf("msg %d: demuxed to stream %d, want %d", i, id, sid)
		}
		if !bytes.Equal(content, msg) {
			t.Fatalf("msg %d: content %q", i, content)
		}
	}
}

func TestDemuxLastSuccessfulFirst(t *testing.T) {
	senders, demux := demuxPair(t, 1, 2, 3, 4)
	// Warm up on stream 3.
	rec, _ := senders[3].Seal(nil, ContentTypeApplicationData, []byte("warm"), 0)
	if _, _, _, err := demux.Open(rec); err != nil {
		t.Fatal(err)
	}
	before := demux.Probes
	// 50 more records on stream 3 must each cost exactly one probe.
	for i := 0; i < 50; i++ {
		rec, _ := senders[3].Seal(nil, ContentTypeApplicationData, []byte("hot path"), 0)
		if _, _, _, err := demux.Open(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := demux.Probes - before; got != 50 {
		t.Errorf("hot path used %d probes for 50 records, want 50", got)
	}
}

func TestDemuxUnknownStreamRejected(t *testing.T) {
	_, demux := demuxPair(t, 1, 2)
	outsider := newTestContext(t, 99)
	rec, _ := outsider.Seal(nil, ContentTypeApplicationData, []byte("intruder"), 0)
	if _, _, _, err := demux.Open(rec); err != ErrNoStreamMatch {
		t.Fatalf("err=%v, want ErrNoStreamMatch", err)
	}
}

func TestDemuxForgeryRejected(t *testing.T) {
	senders, demux := demuxPair(t, 1, 2)
	rec, _ := senders[1].Seal(nil, ContentTypeApplicationData, []byte("genuine"), 0)
	forged := append([]byte(nil), rec...)
	forged[len(forged)-1] ^= 0xff
	if _, _, _, err := demux.Open(forged); err != ErrNoStreamMatch {
		t.Fatalf("forged record: err=%v, want ErrNoStreamMatch", err)
	}
	// The genuine record must still open: failed trials consumed no
	// sequence numbers and did not corrupt state.
	if _, _, content, err := demux.Open(rec); err != nil || string(content) != "genuine" {
		t.Fatalf("genuine record after forgery: content=%q err=%v", content, err)
	}
}

func TestDemuxFailedFastPathDoesNotCorruptRecord(t *testing.T) {
	// Force the fast path (last-successful stream) to fail, then require
	// the slow path to still authenticate the record: the buffer must
	// survive the failed in-place open.
	senders, demux := demuxPair(t, 1, 2)
	// Warm up stream 1 so it is the fast-path candidate.
	rec, _ := senders[1].Seal(nil, ContentTypeApplicationData, []byte("warm"), 0)
	if _, _, _, err := demux.Open(rec); err != nil {
		t.Fatal(err)
	}
	// Now deliver a stream-2 record.
	rec2, _ := senders[2].Seal(nil, ContentTypeApplicationData, []byte("switch"), 0)
	id, _, content, err := demux.Open(rec2)
	if err != nil || id != 2 || string(content) != "switch" {
		t.Fatalf("id=%d content=%q err=%v", id, content, err)
	}
}

func TestDemuxDetach(t *testing.T) {
	senders, demux := demuxPair(t, 1, 2)
	demux.Detach(2)
	if demux.Streams() != 1 {
		t.Fatalf("Streams() = %d", demux.Streams())
	}
	rec, _ := senders[2].Seal(nil, ContentTypeApplicationData, []byte("gone"), 0)
	if _, _, _, err := demux.Open(rec); err != ErrNoStreamMatch {
		t.Fatalf("detached stream still matched: %v", err)
	}
	if demux.Context(1) == nil || demux.Context(2) != nil {
		t.Error("Context lookup wrong after detach")
	}
	demux.Detach(42) // absent: must be a no-op
	if demux.Streams() != 1 {
		t.Error("Detach of absent stream changed state")
	}
}

func TestDemuxEmpty(t *testing.T) {
	demux := &Demux{}
	send := newTestContext(t, 0)
	rec, _ := send.Seal(nil, ContentTypeApplicationData, []byte("x"), 0)
	if _, _, _, err := demux.Open(rec); err != ErrNoStreamMatch {
		t.Fatalf("err=%v", err)
	}
}

func TestDeframerPartialAndCoalesced(t *testing.T) {
	send := newTestContext(t, 0)
	var stream []byte
	var msgs [][]byte
	for i := 0; i < 5; i++ {
		msg := bytes.Repeat([]byte{byte('a' + i)}, 100*(i+1))
		msgs = append(msgs, msg)
		rec, _ := send.Seal(nil, ContentTypeApplicationData, msg, 0)
		stream = append(stream, rec...)
	}

	// Feed the byte stream in awkward chunk sizes (simulating TCP
	// segmentation and middlebox resegmentation).
	for _, chunk := range []int{1, 3, 7, 64, 1024} {
		recv := newTestContext(t, 0)
		var d Deframer
		var got [][]byte
		for off := 0; off < len(stream); off += chunk {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			d.Feed(stream[off:end])
			for {
				rec, ok, err := d.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				_, content, err := recv.Open(rec)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, append([]byte(nil), content...))
			}
		}
		if len(got) != len(msgs) {
			t.Fatalf("chunk %d: got %d records, want %d", chunk, len(got), len(msgs))
		}
		for i := range msgs {
			if !bytes.Equal(got[i], msgs[i]) {
				t.Fatalf("chunk %d: record %d mismatch", chunk, i)
			}
		}
	}
}

func TestDeframerOversizedRecord(t *testing.T) {
	var d Deframer
	hdr := []byte{23, 3, 3, 0xff, 0xff} // 65535 > MaxCiphertextLen
	d.Feed(hdr)
	if _, _, err := d.Next(); err != ErrRecordTooLarge {
		t.Fatalf("err=%v, want ErrRecordTooLarge", err)
	}
}

func TestDeframerBufferedAndReset(t *testing.T) {
	var d Deframer
	d.Feed([]byte{23, 3, 3})
	if d.Buffered() != 3 {
		t.Fatalf("Buffered = %d", d.Buffered())
	}
	if _, ok, _ := d.Next(); ok {
		t.Fatal("Next returned a record from a bare partial header")
	}
	d.Reset()
	if d.Buffered() != 0 {
		t.Fatal("Reset did not clear buffer")
	}
}

func BenchmarkTrialDecrypt(b *testing.B) {
	// X2: cost of implicit stream IDs. Measures records that switch
	// streams every time (worst case) across varying stream counts.
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("streams=%d/switch", n), func(b *testing.B) {
			ids := make([]uint32, n)
			for i := range ids {
				ids[i] = uint32(i + 1)
			}
			senders, demux := demuxPair(b, ids...)
			payload := make([]byte, 1400)
			recs := make([][]byte, b.N)
			for i := 0; i < b.N; i++ {
				sid := ids[i%n]
				recs[i], _ = senders[sid].Seal(nil, ContentTypeApplicationData, payload, 0)
			}
			b.ResetTimer()
			b.SetBytes(int64(len(payload)))
			for i := 0; i < b.N; i++ {
				if _, _, _, err := demux.Open(recs[i]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRecordSeal16K(b *testing.B) {
	send := newTestContext(b, 0)
	payload := make([]byte, MaxPlaintextLen)
	dst := make([]byte, 0, MaxRecordLen)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = send.Seal(dst[:0], ContentTypeApplicationData, payload, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecordOpen16K(b *testing.B) {
	send := newTestContext(b, 0)
	payload := make([]byte, MaxPlaintextLen)
	recs := make([][]byte, b.N)
	for i := 0; i < b.N; i++ {
		recs[i], _ = send.Seal(nil, ContentTypeApplicationData, payload, 0)
	}
	recv := newTestContext(b, 0)
	b.ResetTimer()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := recv.Open(recs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDeframerCompactAllowsBufferReuse(t *testing.T) {
	// Regression: the zero-copy view must survive the caller reusing
	// its read buffer, as long as Compact runs between feeds.
	send := newTestContext(t, 0)
	recv := newTestContext(t, 0)
	var d Deframer

	readBuf := make([]byte, 4096)
	var msgs [][]byte
	for i := 0; i < 8; i++ {
		msgs = append(msgs, bytes.Repeat([]byte{byte(i + 1)}, 300))
	}
	var wire []byte
	for _, m := range msgs {
		rec, _ := send.Seal(nil, ContentTypeApplicationData, m, 0)
		wire = append(wire, rec...)
	}

	var got [][]byte
	off := 0
	for off < len(wire) {
		// Simulate a socket read into the same reused buffer, cutting
		// records at awkward places.
		n := copy(readBuf, wire[off:])
		if n > 500 {
			n = 500
		}
		off += n
		d.Feed(readBuf[:n])
		for {
			rec, ok, err := d.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			_, content, err := recv.Open(rec)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, append([]byte(nil), content...))
		}
		d.Compact() // caller is about to overwrite readBuf
	}
	if len(got) != len(msgs) {
		t.Fatalf("got %d records, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !bytes.Equal(got[i], msgs[i]) {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

func TestDeframerViewZeroCopy(t *testing.T) {
	// When a whole record arrives in one Feed, Next must return a slice
	// aliasing the fed buffer (no copy).
	send := newTestContext(t, 0)
	rec, _ := send.Seal(nil, ContentTypeApplicationData, []byte("zero copy"), 0)
	var d Deframer
	d.Feed(rec)
	got, ok, err := d.Next()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if &got[0] != &rec[0] {
		t.Error("Next copied despite the zero-copy fast path")
	}
}
