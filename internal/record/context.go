package record

import (
	"crypto/cipher"
	"errors"
	"fmt"

	"tcpls/internal/hkdf"
	"tcpls/internal/wire"
)

// Record layer size limits (RFC 8446 §5.1, §5.2). TCPLS keeps the TLS
// limits so records are indistinguishable from regular TLS 1.3 AppData.
const (
	HeaderLen        = 5     // opaque type + legacy version + length
	MaxPlaintextLen  = 16384 // 2^14 bytes of inner plaintext content
	maxExpansion     = 256   // RFC 8446 allowance for type byte + tag + padding
	MaxCiphertextLen = MaxPlaintextLen + maxExpansion
	MaxRecordLen     = HeaderLen + MaxCiphertextLen
)

// TLS content types that appear on the wire.
const (
	ContentTypeChangeCipherSpec = 20
	ContentTypeAlert            = 21
	ContentTypeHandshake        = 22
	ContentTypeApplicationData  = 23
)

// Errors returned by the record layer.
var (
	ErrDecrypt        = errors.New("record: AEAD authentication failed")
	ErrRecordTooLarge = errors.New("record: record exceeds maximum size")
	ErrBadContentType = errors.New("record: malformed inner content type")
	ErrNoStreamMatch  = errors.New("record: no stream context authenticates this record")
)

// StreamContext is the unidirectional cryptographic context of one TCPLS
// stream (paper §3.3.1). Each stream uses the connection's traffic key but
// an IV derived per Fig. 2, plus an independent record sequence space:
//
//	IV_stream[0:4]  = baseIV[0:4] + StreamID      (32-bit sum)
//	nonce[4:12]     = IV_stream[4:12] XOR seq     (per record)
//
// Stream 0 is by construction identical to the context TLS 1.3 itself
// would derive from the handshake, preserving the wire format.
type StreamContext struct {
	streamID uint32
	aead     cipher.AEAD
	iv       [12]byte // per-stream IV, stream ID already folded in
	seq      uint64   // next record sequence number in this direction
	// nonceBuf is the per-record nonce scratch. Computing the nonce into
	// a field of the (heap-resident) context instead of a local keeps
	// the slice handed to cipher.AEAD from forcing a per-record heap
	// allocation. Contexts are serialized by their owner, so one scratch
	// per context suffices.
	nonceBuf [12]byte
}

// NewStreamContext builds the context for streamID from the connection
// traffic key and base IV (both already derived from the traffic secret).
func NewStreamContext(suite *Suite, key, baseIV []byte, streamID uint32) (*StreamContext, error) {
	if len(baseIV) != suite.IVLen {
		return nil, fmt.Errorf("record: IV must be %d bytes, got %d", suite.IVLen, len(baseIV))
	}
	aead, err := suite.AEAD(key)
	if err != nil {
		return nil, err
	}
	c := &StreamContext{streamID: streamID, aead: aead}
	copy(c.iv[:], baseIV)
	// Fig. 2: sum the left-most 32 bits of the IV with the Stream ID.
	left := wire.Uint32(c.iv[:4]) + streamID
	wire.PutUint32(c.iv[:4], left)
	return c, nil
}

// DeriveTrafficKeys expands a traffic secret into the record-protection
// key and base IV per RFC 8446 §7.3.
func DeriveTrafficKeys(suite *Suite, trafficSecret []byte) (key, iv []byte) {
	key = hkdf.ExpandLabel(suite.NewHash, trafficSecret, "key", nil, suite.KeyLen)
	iv = hkdf.ExpandLabel(suite.NewHash, trafficSecret, "iv", nil, suite.IVLen)
	return key, iv
}

// StreamID returns the stream this context belongs to.
func (c *StreamContext) StreamID() uint32 { return c.streamID }

// Seq returns the next record sequence number (i.e. the number of records
// processed so far in this direction).
func (c *StreamContext) Seq() uint64 { return c.seq }

// SetSeq resynchronizes the sequence number. Failover's SYNC record
// (paper Fig. 4) tells the receiver which sequence the next record on
// the new connection carries.
func (c *StreamContext) SetSeq(seq uint64) { c.seq = seq }

// Clone returns an independent context sharing the AEAD and stream IV
// but carrying its own sequence counter, started at seq. Failover
// re-homing attaches a clone to the new connection: records still in
// flight on the old connection keep authenticating against the old
// counter while the replay on the new connection proceeds from the
// SYNC's resume point. (cipher.AEAD is stateless, so sharing it across
// clones is safe.)
func (c *StreamContext) Clone(seq uint64) *StreamContext {
	cp := *c
	cp.seq = seq
	return &cp
}

// nonce computes the per-record nonce: the right-most 64 bits of the
// stream IV XORed with the record sequence number (Fig. 2). The result
// lives in the context's scratch field and is valid until the next
// nonce call on this context.
func (c *StreamContext) nonce(seq uint64) []byte {
	c.nonceBuf = c.iv
	right := wire.Uint64(c.nonceBuf[4:12]) ^ seq
	wire.PutUint64(c.nonceBuf[4:12], right)
	return c.nonceBuf[:]
}

// header builds the 5-byte TLS record header for a ciphertext of the
// given length; it doubles as the AEAD additional data.
func header(ctLen int) [HeaderLen]byte {
	return [HeaderLen]byte{
		ContentTypeApplicationData,
		0x03, 0x03, // legacy TLS 1.2 version, frozen by ossification
		byte(ctLen >> 8), byte(ctLen),
	}
}

// Seal encrypts one record carrying content with the given TLS inner
// content type, appends the full wire record (header + ciphertext) to dst
// and returns the extended slice. padTo, when larger than the content,
// pads the inner plaintext with zeros up to that length to hide the true
// content size. The context's sequence number advances by one.
func (c *StreamContext) Seal(dst []byte, contentType uint8, content []byte, padTo int) ([]byte, error) {
	return c.SealV(dst, contentType, padTo, content)
}

// SealV is Seal with scatter-gather content: the parts are concatenated
// directly into the output buffer, so callers composing payload plus a
// control trailer (the TCPLS framing of §3.1) avoid a staging copy.
func (c *StreamContext) SealV(dst []byte, contentType uint8, padTo int, parts ...[]byte) ([]byte, error) {
	contentLen := 0
	for _, p := range parts {
		contentLen += len(p)
	}
	padding := 0
	if padTo > contentLen {
		padding = padTo - contentLen
	}
	innerLen := contentLen + 1 + padding
	if innerLen > MaxPlaintextLen+1 {
		return nil, ErrRecordTooLarge
	}
	ctLen := innerLen + c.aead.Overhead()
	hdr := header(ctLen)

	// Assemble the inner plaintext directly in dst to avoid a staging
	// buffer. Grow dst up front so the in-place AEAD seal below finds
	// room for its tag without reallocating (which would discard the
	// in-place result).
	base := len(dst)
	total := HeaderLen + ctLen
	if cap(dst)-base < total {
		// Geometric growth: sessions seal thousands of records into one
		// output buffer, so growing by exactly one record at a time
		// would copy the whole buffer per record (quadratic).
		newCap := 2 * cap(dst)
		if newCap < base+total {
			newCap = base + total
		}
		grown := make([]byte, base, newCap)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, hdr[:]...)
	for _, p := range parts {
		dst = append(dst, p...)
	}
	dst = append(dst, contentType)
	for i := 0; i < padding; i++ {
		dst = append(dst, 0)
	}
	inner := dst[base+HeaderLen : base+HeaderLen+innerLen]

	nonce := c.nonce(c.seq)
	c.seq++
	// In-place seal: ciphertext overwrites the inner plaintext, the tag
	// lands in the pre-grown capacity.
	c.aead.Seal(inner[:0], nonce, inner, dst[base:base+HeaderLen])
	return dst[:base+total], nil
}

// SealSeq is Seal with an explicit sequence number and no state update.
// Failover retransmission (paper §3.3.2) resends lost records under their
// original sequence numbers so the ciphertext can be replayed as-is; the
// engine also uses this to re-encrypt buffered content deterministically.
func (c *StreamContext) SealSeq(dst []byte, seq uint64, contentType uint8, content []byte, padTo int) ([]byte, error) {
	saved := c.seq
	c.seq = seq
	out, err := c.Seal(dst, contentType, content, padTo)
	c.seq = saved
	return out, err
}

// SealSeqV is SealV at an explicit sequence number, without advancing
// the live counter (failover replay).
func (c *StreamContext) SealSeqV(dst []byte, seq uint64, contentType uint8, padTo int, parts ...[]byte) ([]byte, error) {
	saved := c.seq
	c.seq = seq
	out, err := c.SealV(dst, contentType, padTo, parts...)
	c.seq = saved
	return out, err
}

// Open authenticates and decrypts one full wire record (header included)
// using the context's current receive sequence number. The plaintext is
// decrypted in place inside rec's storage — the zero-copy receive path of
// paper §4.1 — so the returned content slice aliases rec. It returns the
// inner TLS content type and the content with type byte and padding
// stripped. On success the sequence number advances.
func (c *StreamContext) Open(rec []byte) (contentType uint8, content []byte, err error) {
	contentType, content, err = c.openAt(rec, c.seq)
	if err == nil {
		c.seq++
	}
	return contentType, content, err
}

// OpenInto is Open decrypting into scratch instead of in place: rec is
// left untouched, so a failed open cannot corrupt the buffer for other
// candidate streams (trial decryption's fast path uses this to avoid a
// defensive copy of every record). The returned content aliases scratch.
func (c *StreamContext) OpenInto(rec, scratch []byte) (contentType uint8, content []byte, err error) {
	ct, err := c.checkRecord(rec)
	if err != nil {
		return 0, nil, err
	}
	nonce := c.nonce(c.seq)
	inner, err := c.aead.Open(scratch[:0], nonce, ct, rec[:HeaderLen])
	if err != nil {
		return 0, nil, ErrDecrypt
	}
	c.seq++
	return splitInner(inner)
}

// Probe attempts authentication of rec under this context's next sequence
// number without consuming it. Trial decryption (paper §3.3.1) uses this
// to discover the implicit stream ID of an incoming record.
func (c *StreamContext) Probe(rec []byte) bool {
	// AEAD decryption is not in-place here: a failed in-place open would
	// corrupt the buffer for the next candidate stream.
	_, _, err := c.openCopy(rec, c.seq)
	return err == nil
}

func (c *StreamContext) openAt(rec []byte, seq uint64) (uint8, []byte, error) {
	ct, err := c.checkRecord(rec)
	if err != nil {
		return 0, nil, err
	}
	nonce := c.nonce(seq)
	inner, err := c.aead.Open(ct[:0], nonce, ct, rec[:HeaderLen])
	if err != nil {
		return 0, nil, ErrDecrypt
	}
	return splitInner(inner)
}

func (c *StreamContext) openCopy(rec []byte, seq uint64) (uint8, []byte, error) {
	ct, err := c.checkRecord(rec)
	if err != nil {
		return 0, nil, err
	}
	nonce := c.nonce(seq)
	inner, err := c.aead.Open(nil, nonce, ct, rec[:HeaderLen])
	if err != nil {
		return 0, nil, ErrDecrypt
	}
	return splitInner(inner)
}

func (c *StreamContext) checkRecord(rec []byte) ([]byte, error) {
	if len(rec) < HeaderLen+c.aead.Overhead() {
		return nil, ErrDecrypt
	}
	ctLen := int(wire.Uint16(rec[3:5]))
	if ctLen > MaxCiphertextLen {
		return nil, ErrRecordTooLarge
	}
	if len(rec) != HeaderLen+ctLen {
		return nil, ErrDecrypt
	}
	return rec[HeaderLen:], nil
}

// splitInner strips zero padding and extracts the inner content type from
// a decrypted TLSInnerPlaintext.
func splitInner(inner []byte) (uint8, []byte, error) {
	i := len(inner) - 1
	for i >= 0 && inner[i] == 0 {
		i--
	}
	if i < 0 {
		return 0, nil, ErrBadContentType
	}
	return inner[i], inner[:i:i], nil
}
