package record

// Demux recovers the implicit stream ID of incoming records by trial
// decryption (paper §3.3.1, §4.1). The stream ID is deliberately absent
// from the wire — a TCPLS record must be indistinguishable from a TLS 1.3
// AppData record — so the receiver checks the AEAD tag against the
// cryptographic context of each stream attached to the TCP connection the
// record arrived on, trying the stream that matched last time first.
//
// The search cost is bounded by the number of streams attached to one
// connection, and in the common case (sender keeps scheduling the same
// stream) the first probe hits.
type Demux struct {
	contexts []*StreamContext
	last     int    // index of the last successful context
	scratch  []byte // ciphertext backup for the in-place fast path
	// Probes counts tag checks performed, including successful ones.
	// The paper treats each failed check as a forgery attempt against
	// the AEAD limits; exposing the count lets tests and benchmarks
	// verify the last-successful-first optimization.
	Probes uint64
}

// Attach adds a stream context to the trial set.
func (m *Demux) Attach(c *StreamContext) { m.contexts = append(m.contexts, c) }

// Detach removes the context for streamID, if present.
func (m *Demux) Detach(streamID uint32) {
	for i, c := range m.contexts {
		if c.streamID == streamID {
			m.contexts = append(m.contexts[:i], m.contexts[i+1:]...)
			if m.last >= len(m.contexts) {
				m.last = 0
			}
			return
		}
	}
}

// Streams returns the number of attached contexts.
func (m *Demux) Streams() int { return len(m.contexts) }

// Context returns the attached context for streamID, or nil.
func (m *Demux) Context(streamID uint32) *StreamContext {
	for _, c := range m.contexts {
		if c.streamID == streamID {
			return c
		}
	}
	return nil
}

// Open finds the stream whose context authenticates rec, decrypts the
// record in place (zero copy) and advances that stream's receive
// sequence. It returns ErrNoStreamMatch when no attached stream
// authenticates the record — a forgery, a desynchronized peer, or a
// record for a stream not attached to this connection.
func (m *Demux) Open(rec []byte) (streamID uint32, contentType uint8, content []byte, err error) {
	n := len(m.contexts)
	if n == 0 {
		return 0, 0, nil, ErrNoStreamMatch
	}
	// Single attached stream: decrypt fully in place (zero copy).
	if n == 1 {
		m.Probes++
		c := m.contexts[0]
		contentType, content, err = c.Open(rec)
		if err != nil {
			return 0, 0, nil, ErrNoStreamMatch
		}
		return c.streamID, contentType, content, nil
	}
	// Several candidates: decrypt into the reusable scratch buffer so a
	// failed trial leaves the ciphertext intact for the next candidate.
	// The AEAD writes its output either way; only the destination
	// differs, so the fast path still costs exactly one crypto pass.
	if cap(m.scratch) < len(rec) {
		m.scratch = make([]byte, 0, MaxRecordLen)
	}
	for i := 0; i < n; i++ {
		idx := (m.last + i) % n
		c := m.contexts[idx]
		m.Probes++
		contentType, content, err = c.OpenInto(rec, m.scratch)
		if err != nil {
			continue
		}
		m.last = idx
		return c.streamID, contentType, content, nil
	}
	return 0, 0, nil, ErrNoStreamMatch
}
