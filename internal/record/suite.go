// Package record implements the TLS 1.3 record layer extended with the
// TCPLS per-stream cryptographic contexts from the paper's §3.3.1:
//
//   - standard TLS 1.3 AEAD record protection (RFC 8446 §5.2) whose records
//     are what middleboxes observe on the wire;
//   - the Fig. 2 IV-derivation scheme that gives every TCPLS stream an
//     independent encryption context from a single application secret: the
//     left-most 32 bits of the TLS IV are summed with the Stream ID and the
//     right-most 64 bits are XORed with the per-stream record sequence
//     number, guaranteeing nonce uniqueness across the whole session;
//   - trial decryption, which recovers the implicit Stream ID of a received
//     record by checking AEAD tags across the streams attached to a
//     connection (§4.1), trying the last successful stream first;
//   - a zero-copy open path that decrypts a record in place inside the
//     receive buffer, so stream data lands in contiguous memory.
package record

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"fmt"
	"hash"

	"tcpls/internal/chacha20poly1305"
)

// SuiteID identifies a TLS 1.3 cipher suite.
type SuiteID uint16

// Cipher suites supported by this implementation. The paper's measurements
// use AES-128-GCM-SHA256 throughout.
const (
	TLSAES128GCMSHA256        SuiteID = 0x1301
	TLSCHACHA20POLY1305SHA256 SuiteID = 0x1303
)

// Suite describes a cipher suite's primitives.
type Suite struct {
	ID      SuiteID
	KeyLen  int
	IVLen   int
	TagLen  int
	NewHash func() hash.Hash
	newAEAD func(key []byte) (cipher.AEAD, error)
}

// Name returns the IANA name of the suite.
func (s *Suite) Name() string {
	switch s.ID {
	case TLSAES128GCMSHA256:
		return "TLS_AES_128_GCM_SHA256"
	case TLSCHACHA20POLY1305SHA256:
		return "TLS_CHACHA20_POLY1305_SHA256"
	}
	return fmt.Sprintf("unknown(0x%04x)", uint16(s.ID))
}

// AEAD constructs the suite's AEAD for the given traffic key.
func (s *Suite) AEAD(key []byte) (cipher.AEAD, error) {
	if len(key) != s.KeyLen {
		return nil, fmt.Errorf("record: %s key must be %d bytes, got %d", s.Name(), s.KeyLen, len(key))
	}
	return s.newAEAD(key)
}

var suites = map[SuiteID]*Suite{
	TLSAES128GCMSHA256: {
		ID:      TLSAES128GCMSHA256,
		KeyLen:  16,
		IVLen:   12,
		TagLen:  16,
		NewHash: sha256.New,
		newAEAD: func(key []byte) (cipher.AEAD, error) {
			block, err := aes.NewCipher(key)
			if err != nil {
				return nil, err
			}
			return cipher.NewGCM(block)
		},
	},
	TLSCHACHA20POLY1305SHA256: {
		ID:      TLSCHACHA20POLY1305SHA256,
		KeyLen:  32,
		IVLen:   12,
		TagLen:  16,
		NewHash: sha256.New,
		newAEAD: chacha20poly1305.New,
	},
}

// SuiteByID returns the Suite for id, or an error for unknown suites.
func SuiteByID(id SuiteID) (*Suite, error) {
	s, ok := suites[id]
	if !ok {
		return nil, fmt.Errorf("record: unsupported cipher suite 0x%04x", uint16(id))
	}
	return s, nil
}
