package record

// Deframer incrementally reassembles TLS records from a TCP byte stream.
// TCP does not respect record boundaries: a read may deliver half a
// record or several records back to back (and middleboxes resegment at
// will, Sec. 2 of the paper), so the deframer buffers bytes until a full
// record is available.
//
// The deframer is sans-IO: callers Feed it bytes from wherever they came
// from (a socket, a simulator, a test) and pull complete records with
// Next. Records returned by Next alias the internal buffer and remain
// valid until the next call to Feed.
type Deframer struct {
	buf []byte
	off int // start of unparsed data within buf
	// view references the caller's last Feed slice directly when the
	// internal buffer was empty — the zero-copy fast path for the
	// common case of whole records arriving in one read. Any unparsed
	// tail is copied into buf when the next Feed arrives.
	view    []byte
	viewOff int
}

// Feed hands the deframer raw bytes received from the transport. When no
// partial record is buffered the slice is referenced without copying;
// records returned by Next then alias p and remain valid until the next
// Feed. Otherwise bytes are appended to the internal buffer.
func (d *Deframer) Feed(p []byte) {
	// Absorb any unparsed view tail first.
	if d.view != nil {
		d.buf = append(d.buf[:0], d.view[d.viewOff:]...)
		d.off = 0
		d.view = nil
		d.viewOff = 0
	}
	if d.off > 0 {
		n := copy(d.buf, d.buf[d.off:])
		d.buf = d.buf[:n]
		d.off = 0
	}
	if len(d.buf) == 0 {
		d.view = p
		d.viewOff = 0
		return
	}
	d.buf = append(d.buf, p...)
}

// Next returns the next complete record (header plus ciphertext), or
// ok=false when more bytes are needed. It returns ErrRecordTooLarge for a
// header announcing an impossible length, which on a real connection is
// fatal (the stream can never resynchronize).
func (d *Deframer) Next() (rec []byte, ok bool, err error) {
	var avail []byte
	if d.view != nil {
		avail = d.view[d.viewOff:]
	} else {
		avail = d.buf[d.off:]
	}
	if len(avail) < HeaderLen {
		return nil, false, nil
	}
	ctLen := int(avail[3])<<8 | int(avail[4])
	if ctLen > MaxCiphertextLen {
		return nil, false, ErrRecordTooLarge
	}
	total := HeaderLen + ctLen
	if len(avail) < total {
		return nil, false, nil
	}
	if d.view != nil {
		d.viewOff += total
	} else {
		d.off += total
	}
	return avail[:total:total], true, nil
}

// Compact internalizes any zero-copy view tail into the deframer's own
// buffer. Callers that reuse their read buffer MUST call Compact after
// draining records and before the next read: records and the view are
// only valid until then.
func (d *Deframer) Compact() {
	if d.view == nil {
		return
	}
	d.buf = append(d.buf[:0], d.view[d.viewOff:]...)
	d.off = 0
	d.view = nil
	d.viewOff = 0
}

// Buffered returns the number of bytes waiting to be parsed.
func (d *Deframer) Buffered() int {
	if d.view != nil {
		return len(d.view) - d.viewOff
	}
	return len(d.buf) - d.off
}

// Drain consumes and returns all unparsed bytes, including any partial
// record tail. Session setup uses this to hand coalesced post-handshake
// bytes from the handshake transport to the application record loop.
func (d *Deframer) Drain() []byte {
	var out []byte
	if d.view != nil {
		out = append(out, d.view[d.viewOff:]...)
	} else {
		out = append(out, d.buf[d.off:]...)
	}
	d.Reset()
	return out
}

// Reset discards all buffered data.
func (d *Deframer) Reset() {
	d.buf = d.buf[:0]
	d.off = 0
	d.view = nil
	d.viewOff = 0
}
