package server

import (
	"bufio"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"tcpls"
)

// Echo returns a handler that echoes every stream back to the client:
// the iperf-style workload of the paper's throughput experiments.
// Each stream is copied on its own goroutine until the client sends
// FIN, then half-closed back.
func Echo() Handler {
	return func(sess *tcpls.Session) {
		var inflight sync.WaitGroup
		defer inflight.Wait()
		for {
			st, err := sess.AcceptStream(context.Background())
			if err != nil {
				return
			}
			inflight.Add(1)
			go func() {
				defer inflight.Done()
				defer st.Close()
				io.Copy(st, st)
			}()
		}
	}
}

// Files returns a handler serving files under root: each stream's
// request is one newline-terminated relative path, answered with the
// file's bytes and a FIN (errors just close the stream). Paths are
// cleaned and confined to root.
func Files(root string) Handler {
	return func(sess *tcpls.Session) {
		var inflight sync.WaitGroup
		defer inflight.Wait()
		for {
			st, err := sess.AcceptStream(context.Background())
			if err != nil {
				return
			}
			inflight.Add(1)
			go func() {
				defer inflight.Done()
				defer st.Close()
				serveFile(root, st)
			}()
		}
	}
}

// serveFile answers one file request on one stream.
func serveFile(root string, st *tcpls.Stream) {
	name, err := bufio.NewReaderSize(st, 4096).ReadString('\n')
	if err != nil {
		return
	}
	name = strings.TrimSpace(name)
	clean := filepath.Clean("/" + name) // confine: ".." collapses against the virtual root
	f, err := os.Open(filepath.Join(root, clean))
	if err != nil {
		return
	}
	defer f.Close()
	io.Copy(st, f)
}
