package server

// Budget is the process-wide memory budget: the sum the per-session
// flow-control caps (MaxRecvBufferBytes, MaxReorderBytes,
// MaxRetransmitBytes) are rolled up against. It charges the larger of
// the registry's actual buffered-byte rollup and a nominal per-session
// reservation — the rollup is authoritative but refreshes on an
// interval, so the nominal floor keeps a burst of brand-new sessions
// (whose buffers are still empty) from sailing past the budget between
// rollups.
type Budget struct {
	reg *Registry
	// limit is the budget in bytes; zero or negative disables shedding.
	limit int64
	// nominal is the per-session reservation (default
	// DefaultNominalBytes).
	nominal int64
}

const (
	// DefaultNominalBytes reserves 256 KiB per session against the
	// budget — a loaded-but-not-pathological session's working set,
	// far below the multi-MiB worst case the flow-control caps allow.
	DefaultNominalBytes = 256 << 10
	// highWaterNum/highWaterDen put the shed threshold at 90% of the
	// budget, leaving headroom for already-admitted sessions to grow.
	highWaterNum = 9
	highWaterDen = 10
)

// NewBudget builds a budget over reg. limit <= 0 disables shedding;
// nominal <= 0 means DefaultNominalBytes.
func NewBudget(reg *Registry, limit, nominal int64) *Budget {
	if nominal <= 0 {
		nominal = DefaultNominalBytes
	}
	return &Budget{reg: reg, limit: limit, nominal: nominal}
}

// Used is the charged memory: max(actual rollup, nominal × sessions).
func (b *Budget) Used() int64 {
	actual := b.reg.MemoryBytes()
	floor := b.nominal * int64(b.reg.Len())
	if floor > actual {
		return floor
	}
	return actual
}

// Limit returns the configured budget (0 = unlimited).
func (b *Budget) Limit() int64 {
	if b.limit <= 0 {
		return 0
	}
	return b.limit
}

// Hot reports whether the process is at or past the shed threshold
// (90% of the budget) — new sessions should be rejected until rollups
// or departures bring usage back down.
func (b *Budget) Hot() bool {
	if b.limit <= 0 {
		return false
	}
	return b.Used() >= b.limit/highWaterDen*highWaterNum
}
