package server

import (
	"encoding/binary"
	"sync"
	"testing"
)

// fakeSession is a registry/budget test double.
type fakeSession struct {
	mu     sync.Mutex
	mem    int
	closed bool
}

func (f *fakeSession) MemoryFootprint() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mem
}

func (f *fakeSession) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

func (f *fakeSession) setMem(n int) {
	f.mu.Lock()
	f.mem = n
	f.mu.Unlock()
}

func (f *fakeSession) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

func sid(n uint32) SessID {
	var id SessID
	binary.LittleEndian.PutUint32(id[:4], n)
	return id
}

func TestRegistryAddRemove(t *testing.T) {
	r := NewRegistry(8)
	a, b := &fakeSession{mem: 100}, &fakeSession{mem: 200}
	if !r.Add(sid(1), a) {
		t.Fatal("Add(1) failed")
	}
	if r.Add(sid(1), b) {
		t.Fatal("duplicate Add(1) succeeded")
	}
	if !r.Add(sid(2), b) {
		t.Fatal("Add(2) failed")
	}
	if got := r.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := r.MemoryBytes(); got != 300 {
		t.Fatalf("MemoryBytes = %d, want 300", got)
	}
	if s, ok := r.Get(sid(2)); !ok || s != Session(b) {
		t.Fatal("Get(2) mismatch")
	}
	if s, ok := r.Remove(sid(1)); !ok || s != Session(a) {
		t.Fatal("Remove(1) mismatch")
	}
	if _, ok := r.Remove(sid(1)); ok {
		t.Fatal("double Remove(1) succeeded")
	}
	if got, want := r.Len(), 1; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if got := r.MemoryBytes(); got != 200 {
		t.Fatalf("MemoryBytes after remove = %d, want 200", got)
	}
}

func TestRegistryRollup(t *testing.T) {
	r := NewRegistry(4)
	ss := make([]*fakeSession, 100)
	for i := range ss {
		ss[i] = &fakeSession{mem: 10}
		if !r.Add(sid(uint32(i)), ss[i]) {
			t.Fatal("Add failed")
		}
	}
	if got := r.MemoryBytes(); got != 1000 {
		t.Fatalf("initial MemoryBytes = %d, want 1000", got)
	}
	for _, s := range ss {
		s.setMem(25)
	}
	if got := r.Rollup(); got != 2500 {
		t.Fatalf("Rollup = %d, want 2500", got)
	}
	// Removal after a rollup must subtract the refreshed figure, not
	// the stale admission-time one.
	r.Remove(sid(0))
	if got := r.MemoryBytes(); got != 2475 {
		t.Fatalf("MemoryBytes after remove = %d, want 2475", got)
	}
}

func TestRegistryShardsBalanced(t *testing.T) {
	r := NewRegistry(16)
	if len(r.shards) != 16 {
		t.Fatalf("shards = %d, want 16", len(r.shards))
	}
	for i := 0; i < 1600; i++ {
		r.Add(sid(uint32(i)), &fakeSession{})
	}
	// Sequential low-word IDs stripe round-robin over the mask; every
	// shard must hold some sessions (the real IDs are uniformly random).
	for i := range r.shards {
		r.shards[i].mu.Lock()
		n := len(r.shards[i].sessions)
		r.shards[i].mu.Unlock()
		if n == 0 {
			t.Fatalf("shard %d empty after 1600 adds", i)
		}
	}
}

func TestRegistryCloseAllAndForEach(t *testing.T) {
	r := NewRegistry(4)
	ss := make([]*fakeSession, 10)
	for i := range ss {
		ss[i] = &fakeSession{}
		r.Add(sid(uint32(i)), ss[i])
	}
	var visited int
	r.ForEach(func(id SessID, s Session) bool {
		visited++
		return true
	})
	if visited != 10 {
		t.Fatalf("ForEach visited %d, want 10", visited)
	}
	r.CloseAll()
	for i, s := range ss {
		if !s.isClosed() {
			t.Fatalf("session %d not closed by CloseAll", i)
		}
	}
	// CloseAll does not unregister — handlers do that on their way out.
	if got := r.Len(); got != 10 {
		t.Fatalf("Len after CloseAll = %d, want 10", got)
	}
}

func TestRegistryShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultShards}, {-3, DefaultShards}, {1, 1}, {3, 4}, {64, 64}, {65, 128},
	} {
		if got := len(NewRegistry(tc.in).shards); got != tc.want {
			t.Errorf("NewRegistry(%d): %d shards, want %d", tc.in, got, tc.want)
		}
	}
}

func TestBudget(t *testing.T) {
	r := NewRegistry(4)
	b := NewBudget(r, 1000, 100)
	if b.Hot() {
		t.Fatal("empty budget hot")
	}
	// Nominal floor: 5 empty sessions charge 5×100 despite a zero
	// rollup.
	for i := 0; i < 5; i++ {
		r.Add(sid(uint32(i)), &fakeSession{})
	}
	if got := b.Used(); got != 500 {
		t.Fatalf("Used = %d, want nominal floor 500", got)
	}
	if b.Hot() {
		t.Fatal("budget hot at 50%")
	}
	// Actual rollup overtakes the floor.
	big := &fakeSession{mem: 900}
	r.Add(sid(99), big)
	r.Rollup()
	if got := b.Used(); got != 900 {
		t.Fatalf("Used = %d, want actual 900", got)
	}
	if !b.Hot() {
		t.Fatal("budget not hot at 90%")
	}
	r.Remove(sid(99))
	if b.Hot() {
		t.Fatal("budget still hot after shedding the big session")
	}
	// Unlimited budget never goes hot.
	if NewBudget(r, 0, 100).Hot() {
		t.Fatal("unlimited budget hot")
	}
}
