package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"tcpls"
	"tcpls/internal/telemetry"
	"tcpls/internal/testutil"
)

// startServer builds a Server with a fresh metrics registry, wires a
// loopback listener through its admission controller, and serves in
// the background. Cleanup shuts it down hard.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.TCPLS == nil {
		cfg.TCPLS = &tcpls.Config{}
	}
	if cfg.TCPLS.Certificate == nil {
		cert, err := tcpls.NewCertificate("test.server")
		if err != nil {
			t.Fatal(err)
		}
		cfg.TCPLS.Certificate = cert
	}
	if cfg.MetricsRegistry == nil {
		cfg.MetricsRegistry = telemetry.NewRegistry()
	}
	if cfg.Handler == nil {
		cfg.Handler = Echo()
	}
	srv := New(cfg)
	ln, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		select {
		case err := <-serveDone:
			if err != nil {
				t.Errorf("Serve: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
	})
	return srv, ln.Addr().String()
}

func dialClient(t *testing.T, addr string) *tcpls.Session {
	t.Helper()
	sess, err := tcpls.Dial("tcp", addr, &tcpls.Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// echoOnce opens a stream, pushes payload, and checks the echo comes
// back byte-exact.
func echoOnce(sess *tcpls.Session, payload []byte) error {
	st, err := sess.OpenStream()
	if err != nil {
		return err
	}
	errCh := make(chan error, 1)
	go func() {
		if _, err := st.Write(payload); err != nil {
			errCh <- err
			return
		}
		errCh <- st.Close() // FIN: the echo handler's copy ends
	}()
	got, err := io.ReadAll(st)
	if err != nil {
		return err
	}
	if werr := <-errCh; werr != nil {
		return werr
	}
	if !bytes.Equal(got, payload) {
		return errors.New("echo mismatch")
	}
	return nil
}

// TestServerEchoConcurrentSessions serves a burst of concurrent echo
// sessions and checks the registry, the metrics rollup, and the
// goroutine count all return to baseline after a graceful Shutdown.
func TestServerEchoConcurrentSessions(t *testing.T) {
	base := runtime.NumGoroutine()
	srv, addr := startServer(t, Config{RollupInterval: 20 * time.Millisecond})

	const n = 16
	payload := make([]byte, 32<<10)
	rand.Read(payload)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := tcpls.Dial("tcp", addr, &tcpls.Config{ServerName: "test.server"})
			if err != nil {
				errs <- err
				return
			}
			defer sess.Close()
			errs <- echoOnce(sess, payload)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.sm.Accepted.Load(); got != n {
		t.Fatalf("accepted = %d, want %d", got, n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful Shutdown: %v", err)
	}
	if got := srv.Registry().Len(); got != 0 {
		t.Fatalf("registry holds %d sessions after drain", got)
	}
	if got := srv.sm.Drained.Load(); got != n {
		t.Fatalf("drained = %d, want %d", got, n)
	}
	testutil.CheckGoroutines(t, base)
}

// TestServerShedsAtMaxSessions holds sessions open past MaxSessions
// and checks the overflow is shed with an observable reject.
func TestServerShedsAtMaxSessions(t *testing.T) {
	srv, addr := startServer(t, Config{Limits: Limits{MaxSessions: 2}})

	var held []*tcpls.Session
	defer func() {
		for _, s := range held {
			s.Close()
		}
	}()
	for i := 0; i < 2; i++ {
		held = append(held, dialClient(t, addr))
	}
	// The registry counts sessions as handlers pick them up; wait for
	// both before probing the limit.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Registry().Len() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("registry = %d, want 2", srv.Registry().Len())
		}
		time.Sleep(5 * time.Millisecond)
	}

	sess, err := tcpls.Dial("tcp", addr, &tcpls.Config{
		ServerName: "test.server",
		Reconnect:  tcpls.ReconnectConfig{Disabled: true, Deadline: 200 * time.Millisecond},
	})
	if err == nil {
		// Client-side handshake can finish before the shed closes the
		// connection; the session must then die, not serve.
		defer sess.Close()
		select {
		case <-sess.Done():
		case <-time.After(5 * time.Second):
			t.Fatal("overflow session survived MaxSessions shed")
		}
	}
	if got := srv.sm.Rejected(ReasonMaxSessions).Load(); got == 0 {
		t.Fatal("no max_sessions rejection recorded")
	}
	if got := srv.Registry().Len(); got != 2 {
		t.Fatalf("registry = %d, want 2", got)
	}
}

// TestServerDrainGraceful starts a drain while sessions still have
// data in flight: in-flight echoes must complete byte-exact, new
// sessions must be rejected, and Shutdown must return nil.
func TestServerDrainGraceful(t *testing.T) {
	srv, addr := startServer(t, Config{})

	const n = 3
	sessions := make([]*tcpls.Session, n)
	for i := range sessions {
		sessions[i] = dialClient(t, addr)
	}
	// Drain guarantees cover served sessions; wait until the handlers
	// picked all three up before pulling the plug.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Registry().Len() < n {
		if time.Now().After(deadline) {
			t.Fatalf("registry = %d, want %d", srv.Registry().Len(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}

	shutdownErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownErr <- srv.Shutdown(ctx) }()

	// Wait for the drain gate so the new-session probe is
	// deterministic.
	deadline = time.Now().Add(2 * time.Second)
	for !srv.Admission().Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain gate never set")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := tcpls.Dial("tcp", addr, &tcpls.Config{ServerName: "test.server"}); err == nil {
		t.Fatal("new session admitted during drain")
	}

	// Established sessions keep working through the drain.
	payload := make([]byte, 256<<10)
	rand.Read(payload)
	for _, sess := range sessions {
		if err := echoOnce(sess, payload); err != nil {
			t.Fatalf("echo during drain: %v", err)
		}
		sess.Close()
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful Shutdown: %v", err)
	}
	if got := srv.sm.Rejected(ReasonDraining).Load(); got == 0 {
		t.Fatal("no draining rejection recorded")
	}
}

// TestServerDrainDeadline parks sessions that never close and checks
// Shutdown force-closes them at the context deadline, still reaping
// every handler before returning.
func TestServerDrainDeadline(t *testing.T) {
	base := runtime.NumGoroutine()
	srv, addr := startServer(t, Config{})

	var sessions []*tcpls.Session
	for i := 0; i < 3; i++ {
		sessions = append(sessions, dialClient(t, addr))
	}
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hard drain took %v", elapsed)
	}
	if got := srv.Registry().Len(); got != 0 {
		t.Fatalf("registry holds %d sessions after hard drain", got)
	}
	for _, s := range sessions {
		s.Close()
	}
	sessions = nil
	testutil.CheckGoroutines(t, base)
}

// TestServerDebugState checks the /debug/tcpls provider snapshot.
func TestServerDebugState(t *testing.T) {
	srv, addr := startServer(t, Config{MemoryBudget: 1 << 20})
	sess := dialClient(t, addr)
	defer sess.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Registry().Len() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("session never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	state := srv.debugState().(map[string]any)
	if got := state["sessions"].(int); got != 1 {
		t.Fatalf("debug sessions = %d, want 1", got)
	}
	if got := state["budget_limit_bytes"].(int64); got != 1<<20 {
		t.Fatalf("debug budget limit = %d, want %d", got, 1<<20)
	}
	if state["draining"].(bool) {
		t.Fatal("debug draining true on a live server")
	}
}
