package server

import (
	"bytes"
	"context"
	"io"
	"path/filepath"
	"testing"
	"time"

	"tcpls"
	"tcpls/internal/telemetry"
)

// TestResumptionSurvivesServerRestart is the ops contract end to end:
// a ticket issued by one Server resumes at 1-RTT against a second
// Server sharing only the encrypted key file, and the restart shows up
// in the tcpls_resume_accepted_total metric. 0-RTT is deliberately
// DECLINED across the restart — the fresh server's strike register has
// no memory of flights the old process accepted, so tickets issued
// before its birth fail the anti-replay freshness gate — but the early
// bytes still arrive, losslessly, via the 1-RTT fallback.
func TestResumptionSurvivesServerRestart(t *testing.T) {
	keyFile := filepath.Join(t.TempDir(), "ticket.keys")
	cert, err := tcpls.NewCertificate("test.server")
	if err != nil {
		t.Fatal(err)
	}
	mkConfig := func() Config {
		return Config{
			TCPLS:               &tcpls.Config{Certificate: cert},
			TicketKeyFile:       keyFile,
			TicketKeyPassphrase: []byte("restart-pass"),
		}
	}

	srv1, addr1 := startServer(t, mkConfig())
	sess1 := dialClient(t, addr1)
	var ticket *tcpls.ClientTicket
	deadline := time.Now().Add(3 * time.Second)
	for ticket == nil && time.Now().Before(deadline) {
		ticket = sess1.ResumptionTicket()
		time.Sleep(5 * time.Millisecond)
	}
	if ticket == nil {
		t.Fatal("first server issued no resumption ticket")
	}
	sess1.Close()

	// "Restart": drain the first server completely, then bring up a
	// fresh one that knows nothing but the key file.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("first server drain: %v", err)
	}

	_, addr2 := startServer(t, mkConfig())
	early := []byte("0-rtt across a server restart")
	sess2, err := tcpls.Dial("tcp", addr2, &tcpls.Config{
		ServerName: "test.server",
		Ticket:     ticket,
		EarlyData:  early,
	})
	if err != nil {
		t.Fatalf("resumed dial after restart: %v", err)
	}
	defer sess2.Close()
	if !sess2.Resumed() {
		t.Fatal("ticket did not resume across the restart")
	}
	if sess2.EarlyDataAccepted() {
		t.Fatal("0-RTT accepted across a restart — the pre-birth ticket " +
			"must fail the replay register's freshness gate")
	}
	st, ok := sess2.EarlyStream()
	if !ok {
		t.Fatal("no early stream")
	}
	got := make([]byte, len(early))
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, early) {
		t.Fatal("early-data echo corrupted across restart")
	}

	// The acceptance is observable where operators look: the resume
	// counter for the restarted listener on the default registry.
	metrics := telemetry.Default().Gather()
	key := `tcpls_resume_accepted_total{listener="` + addr2 + `"}`
	if metrics[key] < 1 {
		t.Fatalf("%s = %v, want >= 1", key, metrics[key])
	}
}

// TestTicketRotationLoop: a Server with a rotation period actually
// advances the key generation while serving.
func TestTicketRotationLoop(t *testing.T) {
	keyFile := filepath.Join(t.TempDir(), "ticket.keys")
	cert, err := tcpls.NewCertificate("test.server")
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := startServer(t, Config{
		TCPLS:               &tcpls.Config{Certificate: cert},
		TicketKeyFile:       keyFile,
		TicketKeyPassphrase: []byte("rotate-pass"),
		TicketRotate:        30 * time.Millisecond,
	})
	ks, err := srv.TicketKeys()
	if err != nil || ks == nil {
		t.Fatalf("no key store on a TicketKeyFile server: %v", err)
	}
	start := ks.Generation()
	deadline := time.Now().Add(3 * time.Second)
	for ks.Generation() == start && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if ks.Generation() == start {
		t.Fatal("ticket key never rotated")
	}
}
