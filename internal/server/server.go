package server

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"tcpls"
	"tcpls/internal/telemetry"
)

// Handler serves one accepted session. It runs on its own goroutine;
// returning retires the session (the Server closes it and removes it
// from the registry). Handlers should return when
// Session.AcceptStream fails — that is how a drained or dead session
// announces itself.
type Handler func(*tcpls.Session)

// Config configures a Server.
type Config struct {
	// TCPLS is the transport configuration handed to the listener
	// (certificate, failover, flow-control caps, telemetry...). The
	// Server clones it and installs its own Admission controller; a
	// caller-provided Admission hook is overridden.
	TCPLS *tcpls.Config
	// Limits tunes the admission controller (zero value: no limits).
	Limits Limits
	// MemoryBudget caps the process-wide buffered-session memory
	// rollup; past 90% of it new sessions are shed with
	// ReasonMemoryBudget. 0 disables.
	MemoryBudget int64
	// SessionNominalBytes is each session's floor charge against the
	// budget (default 256 KiB), covering the rollup lag for brand-new
	// sessions whose buffers are still empty.
	SessionNominalBytes int64
	// RollupInterval is the registry memory-rollup period (default 1s).
	RollupInterval time.Duration
	// Shards is the registry stripe count (default 64, rounded up to a
	// power of two).
	Shards int
	// Handler serves each session (required by Serve).
	Handler Handler
	// Name labels this server's metrics (tcpls_server_* listener
	// label) and its /debug/tcpls entry. Default "server".
	Name string
	// MetricsRegistry overrides the process-default telemetry registry.
	MetricsRegistry *telemetry.Registry

	// TicketKeyFile persists the resumption ticket keys: sessions
	// resumed against a restarted server keep working as long as the
	// file (and passphrase) survive. The file is created on first use
	// and encrypted under TicketKeyPassphrase. Empty leaves the
	// transport's default (fresh in-memory key per listener). Ignored
	// when Config.TCPLS already carries a TicketKeys store.
	TicketKeyFile string
	// TicketKeyPassphrase encrypts TicketKeyFile (required with it).
	TicketKeyPassphrase []byte
	// TicketRotate rotates the ticket key on this period while the
	// server runs: new tickets seal under the fresh generation, the
	// previous generation stays accepted, and accepted old-generation
	// tickets are reissued on use. Zero disables timed rotation.
	TicketRotate time.Duration
}

// Server runs a TCPLS accept loop for thousands of concurrent
// sessions: admission control at the accept edge, a lock-striped
// session registry with a process memory budget, per-session handler
// goroutines, and graceful drain via Shutdown.
type Server struct {
	cfg    Config
	reg    *Registry
	budget *Budget
	ctrl   *Controller
	sm     *telemetry.ServerMetrics

	handlers handlerGroup // one per live session handler

	mu         sync.Mutex
	ln         *tcpls.Listener
	keys       *tcpls.TicketKeyStore // opened from TicketKeyFile, lazily
	serving    bool
	serveExit  chan struct{} // closed when Serve's accept loop returns
	rollupStop chan struct{}
	rollupDone chan struct{}
	rotateStop chan struct{}
	rotateDone chan struct{}
}

// New builds a Server. Serve or ListenAndServe starts it.
func New(cfg Config) *Server {
	if cfg.Name == "" {
		cfg.Name = "server"
	}
	if cfg.RollupInterval <= 0 {
		cfg.RollupInterval = time.Second
	}
	reg := NewRegistry(cfg.Shards)
	budget := NewBudget(reg, cfg.MemoryBudget, cfg.SessionNominalBytes)
	mreg := cfg.MetricsRegistry
	if mreg == nil {
		mreg = telemetry.Default()
	}
	sm := telemetry.ServerFamiliesOn(mreg).Server(cfg.Name)
	s := &Server{
		cfg:    cfg,
		reg:    reg,
		budget: budget,
		sm:     sm,
	}
	s.ctrl = NewController(cfg.Limits, reg, budget, sm)
	return s
}

// Registry exposes the session registry (tests, debug).
func (s *Server) Registry() *Registry { return s.reg }

// Budget exposes the memory budget (tests, debug).
func (s *Server) Budget() *Budget { return s.budget }

// Admission exposes the controller, for callers that build their own
// tcpls.Listener: set it as Config.Admission before NewListener.
func (s *Server) Admission() *Controller { return s.ctrl }

// Listen opens a TCPLS listener on addr with the Server's admission
// controller installed, ready to hand to Serve. Callers binding port 0
// use it to learn the resolved address before serving.
func (s *Server) Listen(network, addr string) (*tcpls.Listener, error) {
	tcfg := &tcpls.Config{}
	if s.cfg.TCPLS != nil {
		c := *s.cfg.TCPLS
		tcfg = &c
	}
	tcfg.Admission = s.ctrl
	if tcfg.TicketKeys == nil && s.cfg.TicketKeyFile != "" {
		ks, err := s.TicketKeys()
		if err != nil {
			return nil, err
		}
		tcfg.TicketKeys = ks
	}
	return tcpls.Listen(network, addr, tcfg)
}

// TicketKeys opens (once) and returns the persistent ticket key store
// configured via TicketKeyFile, or nil when none is configured. The
// open is lazy so New stays infallible; Listen surfaces the error.
func (s *Server) TicketKeys() (*tcpls.TicketKeyStore, error) {
	if s.cfg.TicketKeyFile == "" {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.keys != nil {
		return s.keys, nil
	}
	ks, err := tcpls.OpenTicketKeyStore(s.cfg.TicketKeyFile, s.cfg.TicketKeyPassphrase)
	if err != nil {
		return nil, err
	}
	s.keys = ks
	return ks, nil
}

// ListenAndServe listens on the given TCP address with the Server's
// admission controller installed and serves until Shutdown.
func (s *Server) ListenAndServe(network, addr string) error {
	ln, err := s.Listen(network, addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts sessions from ln until the listener closes (Shutdown,
// or an external Close). Each session runs Config.Handler on its own
// goroutine. Serve returns nil after a Shutdown-initiated close, the
// listener error otherwise. The listener should have been built with
// this Server's Admission controller — ListenAndServe does that —
// otherwise sessions are served but never gated.
func (s *Server) Serve(ln *tcpls.Listener) error {
	s.mu.Lock()
	if s.serving {
		s.mu.Unlock()
		return errors.New("tcpls/server: Serve called twice")
	}
	s.serving = true
	s.ln = ln
	s.serveExit = make(chan struct{})
	s.rollupStop = make(chan struct{})
	s.rollupDone = make(chan struct{})
	exit := s.serveExit
	go s.rollupLoop(s.rollupStop, s.rollupDone)
	if s.cfg.TicketRotate > 0 && s.keys != nil {
		s.rotateStop = make(chan struct{})
		s.rotateDone = make(chan struct{})
		go s.rotateLoop(s.keys, s.rotateStop, s.rotateDone)
	}
	s.mu.Unlock()
	// Closing exit tells Shutdown every accepted session is wg-tracked,
	// so its wg.Wait cannot race a late wg.Add.
	defer close(exit)

	debugKey := "server:" + s.cfg.Name
	telemetry.RegisterDebug(debugKey, s.debugState)
	defer telemetry.UnregisterDebug(debugKey)

	for {
		sess, err := ln.Accept()
		if err != nil {
			if s.ctrl.Draining() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.handlers.add()
		go s.runSession(sess)
	}
}

// runSession registers one accepted session, runs the handler, and
// retires the session when the handler returns.
func (s *Server) runSession(sess *tcpls.Session) {
	defer s.handlers.done()
	defer s.ctrl.ReleaseSession()
	id := sess.ID()
	// Plain-TLS sessions (DisableTCPLS) share the zero SessID; they are
	// served but only the first is registry-tracked. TCPLS session IDs
	// are 16 random bytes — no collisions in practice.
	tracked := s.reg.Add(id, sess)
	s.sm.Accepted.Inc()
	s.sm.Sessions.Set(int64(s.reg.Len()))
	defer func() {
		sess.Close()
		if tracked {
			s.reg.Remove(id)
		}
		s.sm.Drained.Inc()
		s.sm.Sessions.Set(int64(s.reg.Len()))
	}()
	if h := s.cfg.Handler; h != nil {
		h(sess)
	} else {
		// No handler: hold the session open until it dies.
		<-sess.Done()
	}
}

// rollupLoop refreshes the registry's memory rollup on the configured
// interval, feeding the budget and the tcpls_server_memory_bytes gauge.
func (s *Server) rollupLoop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(s.cfg.RollupInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sm.MemoryBytes.Set(s.reg.Rollup())
			s.sm.Sessions.Set(int64(s.reg.Len()))
		case <-stop:
			return
		}
	}
}

// rotateLoop rotates the persistent ticket key on the configured
// period. Rotation is cheap (one random key, one file rewrite); a
// failed rewrite leaves the in-memory generation advanced, so freshly
// issued tickets still age out on schedule — but the on-disk file is
// now stale, and a restart would strand every ticket sealed since the
// last good write. That drift is surfaced through the
// tcpls_ticket_rotate_failures_total counter so operators notice
// before a restart turns it into mass resumption failure.
func (s *Server) rotateLoop(ks *tcpls.TicketKeyStore, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(s.cfg.TicketRotate)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := ks.Rotate(); err != nil {
				s.sm.TicketRotateFailure.Inc()
			}
		case <-stop:
			return
		}
	}
}

// Shutdown drains the server: stop admitting (new connections and
// sessions reject with ReasonDraining), wait for every session
// handler to finish, then close the listener. If ctx expires first,
// all registered sessions are force-closed — handlers observe the
// close and return — and Shutdown still waits for them before
// returning ctx's error. Established sessions' joins stay admitted
// (and the listener stays open) during the drain so failover keeps
// working until the last handler returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ctrl.SetDraining(true)
	s.mu.Lock()
	ln := s.ln
	exit := s.serveExit
	rollupStop, rollupDone := s.rollupStop, s.rollupDone
	rotateStop, rotateDone := s.rotateStop, s.rotateDone
	s.ln = nil
	s.rollupStop = nil
	s.rotateStop = nil
	s.mu.Unlock()

	// The listener stays open through the drain: new connections are
	// rejected by admission (observable as draining rejects, a fast
	// close instead of connection-refused), while joins keep landing so
	// draining sessions retain failover until the end.
	var err error
	select {
	case <-s.handlers.idle():
	case <-ctx.Done():
		err = ctx.Err()
		s.reg.CloseAll()
		<-s.handlers.idle()
	}

	if ln != nil {
		ln.Close()
	}
	if exit != nil {
		// Serve drains handshakes that completed before the close; wait
		// for it so no handlers.add races the final reap.
		<-exit
	}
	// Stragglers: sessions accepted between the handler wait and the
	// listener close (their handshakes predate the drain gate). Close
	// them and reap their handlers.
	s.reg.CloseAll()
	<-s.handlers.idle()

	if rollupStop != nil {
		close(rollupStop)
		<-rollupDone
	}
	if rotateStop != nil {
		close(rotateStop)
		<-rotateDone
	}
	return err
}

// handlerGroup counts live session-handler goroutines. A plain
// sync.WaitGroup cannot serve here: sessions are still accepted while
// Shutdown drains (the listener stays open for joins/failover), so an
// Add from a zero count would race Wait — the exact misuse
// WaitGroup's race annotations reject. This variant serializes both
// under one mutex and hands waiters a channel instead.
type handlerGroup struct {
	mu   sync.Mutex
	n    int
	zero chan struct{} // lazily made; closed and cleared when n hits 0
}

func (g *handlerGroup) add() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func (g *handlerGroup) done() {
	g.mu.Lock()
	g.n--
	if g.n == 0 && g.zero != nil {
		close(g.zero)
		g.zero = nil
	}
	g.mu.Unlock()
}

// idle returns a channel that is closed once the live-handler count
// reaches zero; if it already is, the channel comes back closed. A
// handler admitted after the count hits zero does not reopen channels
// already handed out — callers re-call idle to observe it.
func (g *handlerGroup) idle() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.n == 0 {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	if g.zero == nil {
		g.zero = make(chan struct{})
	}
	return g.zero
}

// debugState snapshots the server for /debug/tcpls.
func (s *Server) debugState() any {
	used := s.budget.Used()
	return map[string]any{
		"sessions":                     s.reg.Len(),
		"memory_bytes":                 s.reg.MemoryBytes(),
		"budget_used_bytes":            used,
		"budget_limit_bytes":           s.budget.Limit(),
		"budget_hot":                   s.budget.Hot(),
		"draining":                     s.ctrl.Draining(),
		"accepted_total":               s.sm.Accepted.Load(),
		"drained_total":                s.sm.Drained.Load(),
		"handshakes_inflight":          s.sm.Handshakes.Load(),
		"ticket_rotate_failures_total": s.sm.TicketRotateFailure.Load(),
	}
}
