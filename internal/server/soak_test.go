package server

import (
	"context"
	"crypto/rand"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcpls"
	"tcpls/internal/telemetry"
	"tcpls/internal/testutil"
)

// TestServerSoak is the fleet-scale gate: thousands of loopback
// sessions churned through one Server while a hold group stays
// resident. It asserts the properties the runtime exists for —
//
//   - goroutines stay flat after the ramp (no per-session leak),
//   - registry-reported memory stays inside the process budget,
//   - /metrics and /debug/tcpls answer mid-soak,
//   - admission sheds an overload burst with observable
//     tcpls_server_rejected_total counts,
//   - Shutdown drains byte-exact under load within its deadline.
//
// 5000 sessions by default (500 under -race); TCPLS_SOAK_SESSIONS
// overrides. Skipped in -short mode.
func TestServerSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	total := soakDefaultSessions
	if env := os.Getenv("TCPLS_SOAK_SESSIONS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			t.Fatalf("bad TCPLS_SOAK_SESSIONS=%q", env)
		}
		total = n
	}
	const (
		holdN       = 96  // resident sessions, alive the whole soak
		workers     = 64  // concurrent churn dialers
		maxSessions = 128 // admission cap: holdN + 32 churn slots
		payloadSize = 4 << 10
	)

	base := runtime.NumGoroutine()
	mreg := telemetry.NewRegistry()
	cert, err := tcpls.NewCertificate("soak.server")
	if err != nil {
		t.Fatal(err)
	}
	// Per-session telemetry off on both ends: 5k sessions of sess-label
	// cardinality would measure the metrics registry, not the runtime.
	// The server-level tcpls_server_* families carry the soak's
	// observability.
	srvTCPLS := &tcpls.Config{
		Certificate: cert,
		Telemetry:   tcpls.TelemetryConfig{Disabled: true},
	}
	clientCfg := func() *tcpls.Config {
		return &tcpls.Config{
			ServerName: "soak.server",
			Telemetry:  tcpls.TelemetryConfig{Disabled: true},
			Reconnect:  tcpls.ReconnectConfig{Disabled: true, Deadline: 500 * time.Millisecond},
		}
	}
	srv := New(Config{
		TCPLS:           srvTCPLS,
		Limits:          Limits{MaxSessions: maxSessions},
		MemoryBudget:    512 << 20,
		RollupInterval:  100 * time.Millisecond,
		Handler:         Echo(),
		Name:            "soak",
		MetricsRegistry: mreg,
	})
	ln, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	hs, err := telemetry.Serve("127.0.0.1:0", mreg)
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()

	payload := make([]byte, payloadSize)
	rand.Read(payload)

	// Ramp: establish the resident hold group.
	hold := make([]*tcpls.Session, 0, holdN)
	defer func() {
		for _, s := range hold {
			s.Close()
		}
	}()
	for i := 0; i < holdN; i++ {
		sess, err := tcpls.Dial("tcp", addr, clientCfg())
		if err != nil {
			t.Fatalf("hold dial %d: %v", i, err)
		}
		hold = append(hold, sess)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.Registry().Len() >= holdN })
	rampGoroutines := runtime.NumGoroutine()

	// Churn: cycle the remaining sessions through echo round-trips.
	churnTotal := total - holdN
	var churned, shed atomic.Int64
	var wg sync.WaitGroup
	next := make(chan struct{}, churnTotal)
	for i := 0; i < churnTotal; i++ {
		next <- struct{}{}
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range next {
				sess, err := tcpls.Dial("tcp", addr, clientCfg())
				if err != nil {
					shed.Add(1) // admission cut the handshake
					continue
				}
				if err := soakEcho(sess, payload); err != nil {
					shed.Add(1) // shed post-handshake: session died
				} else {
					churned.Add(1)
				}
				sess.Close()
			}
		}()
	}

	// Mid-soak: the observability endpoints must answer while the
	// server is at full load.
	midMetrics := httpGet(t, "http://"+hs.Addr()+"/metrics")
	if !strings.Contains(midMetrics, "tcpls_server_sessions") {
		t.Error("mid-soak /metrics missing tcpls_server_sessions")
	}
	midDebug := httpGet(t, "http://"+hs.Addr()+"/debug/tcpls")
	if !strings.Contains(midDebug, `"server:soak"`) {
		t.Error("mid-soak /debug/tcpls missing the server provider")
	}
	wg.Wait()

	if done := churned.Load() + shed.Load(); done != int64(churnTotal) {
		t.Fatalf("churn accounting: %d done, want %d", done, churnTotal)
	}
	if churned.Load() == 0 {
		t.Fatal("no churn session succeeded")
	}
	t.Logf("churn: %d ok, %d shed; accepted=%d",
		churned.Load(), shed.Load(), srv.sm.Accepted.Load())

	// Flatness: after churning total-holdN sessions through, the
	// goroutine count must sit back at the ramp plateau — any
	// per-session leak shows up multiplied by thousands here.
	waitFor(t, 10*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= rampGoroutines+workers/2
	})

	// Memory: the registry rollup feeds the budget; it must be inside
	// it, and the heap must not have ratcheted with session count.
	if used := srv.Budget().Used(); used >= 512<<20 {
		t.Fatalf("budget used %d past the 512 MiB budget", used)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 1<<30 {
		t.Fatalf("heap %d bytes after soak; per-session state is leaking", ms.HeapAlloc)
	}

	// Overload burst: more concurrent sessions than the admission cap
	// allows. The overflow must shed fast with observable rejects, not
	// hang.
	before := srv.sm.Rejected(ReasonMaxSessions).Load()
	burst := (maxSessions - holdN) + 48
	var burstWg sync.WaitGroup
	var burstHeld sync.Map
	for i := 0; i < burst; i++ {
		burstWg.Add(1)
		go func(i int) {
			defer burstWg.Done()
			sess, err := tcpls.Dial("tcp", addr, clientCfg())
			if err != nil {
				return
			}
			select {
			case <-sess.Done(): // shed: server closed it
				sess.Close()
			case <-time.After(2 * time.Second):
				burstHeld.Store(i, sess) // admitted: hold the slot
			}
		}(i)
	}
	burstWg.Wait()
	rejected := srv.sm.Rejected(ReasonMaxSessions).Load() - before
	if rejected == 0 {
		t.Fatal("overload burst produced no max_sessions rejects")
	}
	t.Logf("burst: %d sheds observable in tcpls_server_rejected_total", rejected)
	burstHeld.Range(func(_, v any) bool {
		v.(*tcpls.Session).Close()
		return true
	})

	// Drain under load: echoes riding on the hold group must complete
	// byte-exact while Shutdown runs, and the drain must finish inside
	// its deadline once the clients hang up.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(ctx) }()
	waitFor(t, 5*time.Second, func() bool { return srv.Admission().Draining() })
	var drainWg sync.WaitGroup
	drainFailures := make(chan error, len(hold))
	for _, sess := range hold {
		drainWg.Add(1)
		go func(sess *tcpls.Session) {
			defer drainWg.Done()
			if err := soakEcho(sess, payload); err != nil {
				drainFailures <- err
			}
			sess.Close()
		}(sess)
	}
	drainWg.Wait()
	close(drainFailures)
	for err := range drainFailures {
		t.Errorf("echo during drain: %v", err)
	}
	hold = nil
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown under load: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := srv.Registry().Len(); got != 0 {
		t.Fatalf("registry holds %d sessions after drain", got)
	}

	// qlog artifact for CI: one traced session against a fresh
	// listener, dumped wherever TCPLS_SOAK_QLOG points.
	if path := os.Getenv("TCPLS_SOAK_QLOG"); path != "" {
		writeSoakQlog(t, cert, payload, path)
	}

	hs.Close()
	testutil.CheckGoroutines(t, base)
}

// soakEcho round-trips payload on a fresh stream and verifies the echo
// byte-exact.
func soakEcho(sess *tcpls.Session, payload []byte) error {
	st, err := sess.OpenStream()
	if err != nil {
		return err
	}
	werr := make(chan error, 1)
	go func() {
		if _, err := st.Write(payload); err != nil {
			werr <- err
			return
		}
		werr <- st.Close()
	}()
	got, err := io.ReadAll(st)
	if err != nil {
		return err
	}
	if err := <-werr; err != nil {
		return err
	}
	if len(got) != len(payload) {
		return fmt.Errorf("echo length %d, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			return fmt.Errorf("echo corrupt at byte %d", i)
		}
	}
	return nil
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return string(body)
}

// writeSoakQlog runs one fully-traced session against a throwaway echo
// server and writes its qlog trace to path — the CI artifact.
func writeSoakQlog(t *testing.T, cert *tcpls.Certificate, payload []byte, path string) {
	t.Helper()
	srv := New(Config{
		TCPLS:           &tcpls.Config{Certificate: cert},
		Handler:         Echo(),
		Name:            "soak-qlog",
		MetricsRegistry: telemetry.NewRegistry(),
	})
	ln, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := tcpls.Dial("tcp", ln.Addr().String(), &tcpls.Config{ServerName: "soak.server"})
	if err != nil {
		t.Fatal(err)
	}
	// Install the live tracer before the traffic, stop it after — that
	// flushes the sink so the file holds the whole session.
	sess.TraceJSON(f)
	if err := soakEcho(sess, payload); err != nil {
		t.Errorf("qlog session echo: %v", err)
	}
	sess.TraceJSON(nil)
	f.Close()
	sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	<-done
}
