// Package server is the production server runtime: a lock-striped
// session registry, accept-edge admission control (token-bucket rate
// limiting, per-IP caps, handshake deadlines), a process-wide memory
// budget rolled up from the per-session flow-control gauges, and a
// Server wrapper with graceful drain — everything the paper's §5
// deployment story needs to hold thousands of concurrent TCPLS
// sessions on one process without unbounded memory or goroutine
// growth.
package server

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"tcpls/internal/handshake"
)

// SessID keys registry entries; it is the handshake-layer session ID
// (the same 16 random bytes tcpls.SessID aliases).
type SessID = handshake.SessID

// Session is the registry's view of one live session: enough to roll
// up memory and to force-close on drain deadline. *tcpls.Session
// satisfies it; tests use fakes.
type Session interface {
	MemoryFootprint() int
	Close() error
}

// entry is one registered session plus its last rolled-up footprint,
// kept so the registry can adjust the process total by the delta when
// the rollup refreshes or the session leaves.
type entry struct {
	sess Session
	mem  int64
}

// shard is one lock stripe of the registry. Sessions hash to shards by
// the first four bytes of their ID — uniformly random, so the stripes
// stay balanced without any mixing.
type shard struct {
	mu       sync.Mutex
	sessions map[SessID]*entry
}

// Registry tracks live sessions across power-of-two lock-striped
// shards. Len and MemoryBytes are O(1) atomic reads so the admission
// path never touches a shard lock.
type Registry struct {
	shards []shard
	mask   uint32

	count atomic.Int64
	mem   atomic.Int64
}

// DefaultShards is the registry stripe count when Config.Shards is
// zero: enough that 5k sessions see ~80 per lock.
const DefaultShards = 64

// NewRegistry builds a registry with at least the requested number of
// shards, rounded up to a power of two. shards <= 0 means
// DefaultShards.
func NewRegistry(shards int) *Registry {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	r := &Registry{shards: make([]shard, n), mask: uint32(n - 1)}
	for i := range r.shards {
		r.shards[i].sessions = make(map[SessID]*entry)
	}
	return r
}

func (r *Registry) shardFor(id SessID) *shard {
	return &r.shards[binary.LittleEndian.Uint32(id[:4])&r.mask]
}

// Add registers a session under id. It reports false (and registers
// nothing) if the id is already present.
func (r *Registry) Add(id SessID, s Session) bool {
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.sessions[id]; ok {
		return false
	}
	mem := int64(s.MemoryFootprint())
	sh.sessions[id] = &entry{sess: s, mem: mem}
	r.count.Add(1)
	r.mem.Add(mem)
	return true
}

// Remove unregisters id, returning the session if it was present.
func (r *Registry) Remove(id SessID) (Session, bool) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.sessions[id]
	if !ok {
		return nil, false
	}
	delete(sh.sessions, id)
	r.count.Add(-1)
	r.mem.Add(-e.mem)
	return e.sess, true
}

// Get returns the session registered under id.
func (r *Registry) Get(id SessID) (Session, bool) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.sessions[id]
	if !ok {
		return nil, false
	}
	return e.sess, true
}

// Len is the number of registered sessions (O(1)).
func (r *Registry) Len() int { return int(r.count.Load()) }

// MemoryBytes is the rolled-up buffered-memory footprint across all
// registered sessions, as of the last Rollup (O(1)).
func (r *Registry) MemoryBytes() int64 { return r.mem.Load() }

// Rollup refreshes every session's memory footprint and returns the
// new total. It walks one shard at a time — a 5k-session rollup holds
// each stripe lock for ~80 MemoryFootprint calls, never the whole
// registry.
func (r *Registry) Rollup() int64 {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, e := range sh.sessions {
			mem := int64(e.sess.MemoryFootprint())
			r.mem.Add(mem - e.mem)
			e.mem = mem
		}
		sh.mu.Unlock()
	}
	return r.mem.Load()
}

// ForEach visits every registered session until fn returns false.
// Sessions are visited under their shard lock; fn must not call back
// into the registry.
func (r *Registry) ForEach(fn func(id SessID, s Session) bool) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for id, e := range sh.sessions {
			if !fn(id, e.sess) {
				sh.mu.Unlock()
				return
			}
		}
		sh.mu.Unlock()
	}
}

// CloseAll force-closes every registered session (drain deadline).
// Sessions stay registered; their handlers observe the close, return,
// and remove them on the normal path.
func (r *Registry) CloseAll() {
	var victims []Session
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, e := range sh.sessions {
			victims = append(victims, e.sess)
		}
		sh.mu.Unlock()
	}
	for _, s := range victims {
		s.Close()
	}
}
