//go:build !race

package server

// soakDefaultSessions is the soak's total session count without the
// race detector (override with TCPLS_SOAK_SESSIONS).
const soakDefaultSessions = 5000
