package server

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tcpls/internal/telemetry"
)

// Limits tunes the accept-edge admission controller. The zero value
// disables every limit (admit everything).
type Limits struct {
	// AcceptRate caps new-handshake admission at this many per second
	// via a token bucket; 0 disables rate limiting.
	AcceptRate float64
	// AcceptBurst is the token bucket depth (default: AcceptRate
	// rounded up, minimum 1).
	AcceptBurst int
	// MaxAdmissionWait bounds how long AdmitConn blocks waiting for an
	// accept token before rejecting outright (default 100ms). The wait
	// is the backpressure; the bound keeps a flood from stacking up
	// goroutines behind the bucket.
	MaxAdmissionWait time.Duration
	// MaxHandshakesPerIP caps concurrent in-flight handshakes from one
	// remote IP; 0 disables.
	MaxHandshakesPerIP int
	// JoinRatePerIP caps cookie/join attempts per second from one
	// remote IP (token bucket, burst JoinBurstPerIP); 0 disables.
	JoinRatePerIP float64
	// JoinBurstPerIP is the per-IP join bucket depth (default:
	// JoinRatePerIP rounded up, minimum 1).
	JoinBurstPerIP int
	// MaxSessions caps registered sessions; 0 disables.
	MaxSessions int
}

// defaultMaxAdmissionWait bounds the accept-token wait when
// Limits.MaxAdmissionWait is zero.
const defaultMaxAdmissionWait = 100 * time.Millisecond

// Rejection reasons, as they appear in the reason label of
// tcpls_server_rejected_total and in RejectError.Reason.
const (
	ReasonDraining     = "draining"
	ReasonAcceptRate   = "accept_rate"
	ReasonIPHandshakes = "ip_handshakes"
	ReasonIPJoins      = "ip_joins"
	ReasonMaxSessions  = "max_sessions"
	ReasonMemoryBudget = "memory_budget"
)

// RejectError is a typed admission rejection; Reason matches the
// metric label so operators can correlate logs with
// tcpls_server_rejected_total.
type RejectError struct {
	Reason string
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("tcpls/server: admission rejected (%s)", e.Reason)
}

// Pre-allocated rejections: the accept edge under flood should not
// allocate per rejected connection.
var (
	errDraining     = &RejectError{Reason: ReasonDraining}
	errAcceptRate   = &RejectError{Reason: ReasonAcceptRate}
	errIPHandshakes = &RejectError{Reason: ReasonIPHandshakes}
	errMaxSessions  = &RejectError{Reason: ReasonMaxSessions}
	errMemoryBudget = &RejectError{Reason: ReasonMemoryBudget}
)

// tokenBucket is a monotonic-clock token bucket that can run a
// bounded debt: take returns how long the caller must wait for its
// token, letting the admission path choose between sleeping (small
// waits — backpressure) and rejecting (large waits — shedding).
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = rate
		if b < 1 {
			b = 1
		}
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b}
}

// take removes one token, returning the wait until that token is
// actually available (0 when the bucket had one spare). maxDebt bounds
// how far negative the bucket may go; past it take returns false and
// leaves the bucket untouched.
func (tb *tokenBucket) take(now time.Time, maxWait time.Duration) (time.Duration, bool) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if !tb.last.IsZero() {
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
	if tb.tokens >= 1 {
		tb.tokens--
		return 0, true
	}
	// Debt: the next token arrives (1 - tokens)/rate from now. Admit
	// with that wait if it fits the bound, else reject without
	// consuming anything.
	wait := time.Duration((1 - tb.tokens) / tb.rate * float64(time.Second))
	if wait > maxWait {
		return 0, false
	}
	tb.tokens--
	return wait, true
}

// allow is take with no willingness to wait (join gating is a
// yes/no — the handshake can't pause mid-join).
func (tb *tokenBucket) allow(now time.Time) bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if !tb.last.IsZero() {
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
	if tb.tokens >= 1 {
		tb.tokens--
		return true
	}
	return false
}

// ipState is one remote IP's accounting: concurrent in-flight
// handshakes and the join-attempt bucket.
type ipState struct {
	handshakes int
	joins      *tokenBucket
	lastSeen   time.Time
}

// ipGCThreshold triggers an idle-entry sweep once the per-IP map
// grows past it, bounding state a scanning flood can pin.
const (
	ipGCThreshold = 4096
	ipIdleAfter   = time.Minute
)

// Controller implements tcpls.AdmissionControl for a Server: accept
// rate limiting, per-IP caps, session-count and memory-budget
// shedding, and the draining gate. All methods are safe for concurrent
// use from the listener's per-connection goroutines.
type Controller struct {
	limits Limits
	accept *tokenBucket // nil when unlimited
	budget *Budget
	reg    *Registry
	sm     *telemetry.ServerMetrics // nil-safe

	// now is the clock, swappable in tests.
	now func() time.Time
	// sleep waits out an admission delay, swappable in tests.
	sleep func(time.Duration)

	// sessions counts admitted-but-not-yet-released sessions. The cap
	// is enforced here, not against the registry: registration happens
	// a few steps after admission, and a thundering herd must not
	// overshoot MaxSessions through that window.
	sessions atomic.Int64

	mu       sync.Mutex
	draining bool
	ips      map[string]*ipState
}

// NewController builds a standalone admission controller. reg and
// budget may be nil (disables session-count and memory shedding); sm
// may be nil (disables metrics).
func NewController(limits Limits, reg *Registry, budget *Budget, sm *telemetry.ServerMetrics) *Controller {
	if limits.MaxAdmissionWait <= 0 {
		limits.MaxAdmissionWait = defaultMaxAdmissionWait
	}
	return &Controller{
		limits: limits,
		accept: newTokenBucket(limits.AcceptRate, limits.AcceptBurst),
		budget: budget,
		reg:    reg,
		sm:     sm,
		now:    time.Now,
		sleep:  time.Sleep,
		ips:    make(map[string]*ipState),
	}
}

// SetDraining flips the drain gate: once set, AdmitConn and
// AdmitSession reject everything with ReasonDraining.
func (c *Controller) SetDraining(v bool) {
	c.mu.Lock()
	c.draining = v
	c.mu.Unlock()
}

// Draining reports the drain gate.
func (c *Controller) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// ipKey maps a remote address to its per-IP accounting key (the bare
// IP, so every ephemeral port of one host shares a bucket).
func ipKey(remote net.Addr) string {
	if remote == nil {
		return ""
	}
	host, _, err := net.SplitHostPort(remote.String())
	if err != nil {
		return remote.String()
	}
	return host
}

// ipFor resolves (creating if needed) the state for remote's IP,
// sweeping idle entries when the map is large. Caller holds c.mu.
func (c *Controller) ipForLocked(key string, now time.Time) *ipState {
	if len(c.ips) > ipGCThreshold {
		for k, st := range c.ips {
			if st.handshakes == 0 && now.Sub(st.lastSeen) > ipIdleAfter {
				delete(c.ips, k)
			}
		}
	}
	st, ok := c.ips[key]
	if !ok {
		st = &ipState{}
		c.ips[key] = st
	}
	st.lastSeen = now
	return st
}

// AdmitConn implements tcpls.AdmissionControl: the drain gate, the
// accept token bucket (bounded wait as backpressure), and the per-IP
// concurrent-handshake cap.
func (c *Controller) AdmitConn(remote net.Addr) (func(), error) {
	if c.Draining() {
		c.sm.Rejected(ReasonDraining).Inc()
		return nil, errDraining
	}
	now := c.now()
	if c.accept != nil {
		wait, ok := c.accept.take(now, c.limits.MaxAdmissionWait)
		if !ok {
			c.sm.Rejected(ReasonAcceptRate).Inc()
			return nil, errAcceptRate
		}
		if c.sm != nil {
			c.sm.AdmissionWait.Observe(wait.Seconds())
		}
		if wait > 0 {
			c.sleep(wait)
		}
	}
	if c.limits.MaxHandshakesPerIP <= 0 {
		c.sm.Handshakes.Add(1)
		return func() { c.sm.Handshakes.Add(-1) }, nil
	}
	key := ipKey(remote)
	c.mu.Lock()
	st := c.ipForLocked(key, now)
	if st.handshakes >= c.limits.MaxHandshakesPerIP {
		c.mu.Unlock()
		c.sm.Rejected(ReasonIPHandshakes).Inc()
		return nil, errIPHandshakes
	}
	st.handshakes++
	c.mu.Unlock()
	c.sm.Handshakes.Add(1)
	var once sync.Once
	release := func() {
		once.Do(func() {
			c.sm.Handshakes.Add(-1)
			c.mu.Lock()
			if st := c.ips[key]; st != nil && st.handshakes > 0 {
				st.handshakes--
			}
			c.mu.Unlock()
		})
	}
	return release, nil
}

// AdmitJoin implements tcpls.AdmissionControl: the per-IP join-rate
// bucket. The drain gate deliberately does NOT reject joins —
// established sessions keep their failover/reconnect path during a
// graceful drain.
func (c *Controller) AdmitJoin(remote net.Addr) bool {
	if c.limits.JoinRatePerIP <= 0 {
		return true
	}
	now := c.now()
	key := ipKey(remote)
	c.mu.Lock()
	st := c.ipForLocked(key, now)
	if st.joins == nil {
		st.joins = newTokenBucket(c.limits.JoinRatePerIP, c.limits.JoinBurstPerIP)
	}
	tb := st.joins
	c.mu.Unlock()
	if tb.allow(now) {
		return true
	}
	c.sm.Rejected(ReasonIPJoins).Inc()
	return false
}

// AdmitSession implements tcpls.AdmissionControl: sheds new sessions
// while draining, past MaxSessions, or with the memory budget hot. A
// successful admission reserves a session slot; the serving layer must
// pair it with ReleaseSession when the session retires.
func (c *Controller) AdmitSession(remote net.Addr) error {
	if c.Draining() {
		c.sm.Rejected(ReasonDraining).Inc()
		return errDraining
	}
	for {
		n := c.sessions.Load()
		if c.limits.MaxSessions > 0 && n >= int64(c.limits.MaxSessions) {
			c.sm.Rejected(ReasonMaxSessions).Inc()
			return errMaxSessions
		}
		if c.sessions.CompareAndSwap(n, n+1) {
			break
		}
	}
	if c.budget != nil && c.budget.Hot() {
		c.sessions.Add(-1)
		c.sm.Rejected(ReasonMemoryBudget).Inc()
		return errMemoryBudget
	}
	return nil
}

// ReleaseSession returns an AdmitSession slot when its session
// retires.
func (c *Controller) ReleaseSession() {
	c.sessions.Add(-1)
}
