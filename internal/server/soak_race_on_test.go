//go:build race

package server

// soakDefaultSessions is scaled down under the race detector: the
// instrumented handshake and record path run ~10x slower.
const soakDefaultSessions = 500
