package server

import (
	"errors"
	"net"
	"testing"
	"time"

	"tcpls/internal/telemetry"
)

// testClock is a manual clock for deterministic token-bucket tests.
// sleep records the wait without advancing time, so back-to-back
// AdmitConn calls model concurrent arrivals at one instant.
type testClock struct {
	now   time.Time
	slept []time.Duration
}

func newTestController(limits Limits, reg *Registry, budget *Budget) (*Controller, *testClock, *telemetry.ServerMetrics) {
	mreg := telemetry.NewRegistry()
	sm := telemetry.ServerFamiliesOn(mreg).Server("test")
	c := NewController(limits, reg, budget, sm)
	clk := &testClock{now: time.Unix(1000, 0)}
	c.now = func() time.Time { return clk.now }
	c.sleep = func(d time.Duration) { clk.slept = append(clk.slept, d) }
	return c, clk, sm
}

func addr(s string) net.Addr {
	return &net.TCPAddr{IP: net.ParseIP(s), Port: 12345}
}

func wantReject(t *testing.T, err error, reason string) {
	t.Helper()
	var re *RejectError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a *RejectError", err)
	}
	if re.Reason != reason {
		t.Fatalf("reject reason = %q, want %q", re.Reason, reason)
	}
}

func TestAdmitConnRateLimit(t *testing.T) {
	c, clk, sm := newTestController(Limits{AcceptRate: 10, AcceptBurst: 1}, nil, nil)
	// First conn: token available, no wait.
	rel, err := c.AdmitConn(addr("10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if len(clk.slept) != 0 {
		t.Fatalf("unexpected sleep %v", clk.slept)
	}
	// Second conn immediately: next token is 100ms out — exactly the
	// default MaxAdmissionWait, so it is admitted after sleeping.
	rel, err = c.AdmitConn(addr("10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if len(clk.slept) != 1 || clk.slept[0] != 100*time.Millisecond {
		t.Fatalf("slept %v, want [100ms]", clk.slept)
	}
	// Third conn: the bucket is in debt past the wait bound — reject
	// fast, never hang.
	_, err = c.AdmitConn(addr("10.0.0.1"))
	wantReject(t, err, ReasonAcceptRate)
	if got := sm.Rejected(ReasonAcceptRate).Load(); got != 1 {
		t.Fatalf("accept_rate rejects = %d, want 1", got)
	}
	if got := sm.AdmissionWait.Count(); got != 2 {
		t.Fatalf("admission wait samples = %d, want 2", got)
	}
	// A second of refill restores admission.
	clk.now = clk.now.Add(time.Second)
	if _, err := c.AdmitConn(addr("10.0.0.1")); err != nil {
		t.Fatalf("post-refill AdmitConn: %v", err)
	}
}

func TestAdmitConnPerIPHandshakes(t *testing.T) {
	c, _, sm := newTestController(Limits{MaxHandshakesPerIP: 2}, nil, nil)
	var rels []func()
	for i := 0; i < 2; i++ {
		rel, err := c.AdmitConn(addr("10.0.0.1"))
		if err != nil {
			t.Fatal(err)
		}
		rels = append(rels, rel)
	}
	_, err := c.AdmitConn(addr("10.0.0.1"))
	wantReject(t, err, ReasonIPHandshakes)
	// A different IP is unaffected.
	if _, err := c.AdmitConn(addr("10.0.0.2")); err != nil {
		t.Fatal(err)
	}
	// Releasing frees the slot; double-release must not double-free.
	rels[0]()
	rels[0]()
	if _, err := c.AdmitConn(addr("10.0.0.1")); err != nil {
		t.Fatalf("AdmitConn after release: %v", err)
	}
	if _, err := c.AdmitConn(addr("10.0.0.1")); err == nil {
		t.Fatal("double-release freed two slots")
	}
	if got := sm.Rejected(ReasonIPHandshakes).Load(); got != 2 {
		t.Fatalf("ip_handshakes rejects = %d, want 2", got)
	}
}

func TestAdmitJoinPerIPRate(t *testing.T) {
	c, clk, sm := newTestController(Limits{JoinRatePerIP: 1, JoinBurstPerIP: 2}, nil, nil)
	if !c.AdmitJoin(addr("10.0.0.1")) || !c.AdmitJoin(addr("10.0.0.1")) {
		t.Fatal("burst joins rejected")
	}
	if c.AdmitJoin(addr("10.0.0.1")) {
		t.Fatal("join admitted past the bucket")
	}
	if !c.AdmitJoin(addr("10.0.0.2")) {
		t.Fatal("other IP's join rejected")
	}
	clk.now = clk.now.Add(time.Second)
	if !c.AdmitJoin(addr("10.0.0.1")) {
		t.Fatal("join rejected after refill")
	}
	if got := sm.Rejected(ReasonIPJoins).Load(); got != 1 {
		t.Fatalf("ip_joins rejects = %d, want 1", got)
	}
}

func TestAdmitDraining(t *testing.T) {
	c, _, sm := newTestController(Limits{}, nil, nil)
	c.SetDraining(true)
	_, err := c.AdmitConn(addr("10.0.0.1"))
	wantReject(t, err, ReasonDraining)
	wantReject(t, c.AdmitSession(addr("10.0.0.1")), ReasonDraining)
	// Joins stay admitted: established sessions keep failover during a
	// graceful drain.
	if !c.AdmitJoin(addr("10.0.0.1")) {
		t.Fatal("join rejected while draining")
	}
	if got := sm.Rejected(ReasonDraining).Load(); got != 2 {
		t.Fatalf("draining rejects = %d, want 2", got)
	}
	c.SetDraining(false)
	if _, err := c.AdmitConn(addr("10.0.0.1")); err != nil {
		t.Fatal(err)
	}
}

func TestAdmitSessionLimits(t *testing.T) {
	reg := NewRegistry(4)
	budget := NewBudget(reg, 1000, 400)
	c, _, sm := newTestController(Limits{MaxSessions: 2}, reg, budget)

	// Slot reservation: the cap binds at admission time, not at (later)
	// registration, so a thundering herd cannot overshoot it.
	if err := c.AdmitSession(addr("10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	if err := c.AdmitSession(addr("10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	wantReject(t, c.AdmitSession(addr("10.0.0.1")), ReasonMaxSessions)
	if got := sm.Rejected(ReasonMaxSessions).Load(); got != 1 {
		t.Fatalf("max_sessions rejects = %d, want 1", got)
	}
	c.ReleaseSession()
	if err := c.AdmitSession(addr("10.0.0.1")); err != nil {
		t.Fatalf("AdmitSession after release: %v", err)
	}
	c.ReleaseSession()
	c.ReleaseSession()

	// Memory budget: a hot budget sheds and rolls the reserved slot
	// back.
	reg.Add(sid(3), &fakeSession{mem: 950})
	reg.Rollup()
	wantReject(t, c.AdmitSession(addr("10.0.0.1")), ReasonMemoryBudget)
	if got := sm.Rejected(ReasonMemoryBudget).Load(); got != 1 {
		t.Fatalf("memory_budget rejects = %d, want 1", got)
	}
	if got := c.sessions.Load(); got != 0 {
		t.Fatalf("session slots = %d after memory shed, want 0", got)
	}
}

func TestIPStateGC(t *testing.T) {
	c, clk, _ := newTestController(Limits{MaxHandshakesPerIP: 4}, nil, nil)
	for i := 0; i < ipGCThreshold+10; i++ {
		ip := net.IPv4(10, byte(i>>16), byte(i>>8), byte(i))
		rel, err := c.AdmitConn(&net.TCPAddr{IP: ip, Port: 1})
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	// All entries idle: the next admission past the threshold sweeps
	// them.
	clk.now = clk.now.Add(2 * ipIdleAfter)
	rel, err := c.AdmitConn(addr("10.9.9.9"))
	if err != nil {
		t.Fatal(err)
	}
	rel()
	c.mu.Lock()
	n := len(c.ips)
	c.mu.Unlock()
	if n > 2 {
		t.Fatalf("ip map holds %d entries after GC, want <= 2", n)
	}
}

func TestRejectErrorMessage(t *testing.T) {
	err := &RejectError{Reason: ReasonAcceptRate}
	if want := "tcpls/server: admission rejected (accept_rate)"; err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}
