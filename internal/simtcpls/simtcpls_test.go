package simtcpls

import (
	"bytes"
	"testing"
	"time"

	"tcpls/internal/core"
	"tcpls/internal/sim"
	"tcpls/internal/simtcp"
)

func mbps(n int64) int64 { return n * 1_000_000 }

func TestStreamTransferOverSimulatedTCP(t *testing.T) {
	s := sim.New()
	client, server := Pair(s, core.Config{})
	path := sim.NewPath(s, mbps(25), 5*time.Millisecond)

	var got []byte
	server.OnEvent = func(ev core.Event) {
		if ev.Kind == core.EventStreamData {
			buf := make([]byte, 64<<10)
			for server.Sess.Readable(ev.Stream) > 0 {
				n, _ := server.Sess.Read(ev.Stream, buf)
				got = append(got, buf[:n]...)
			}
		}
	}
	data := make([]byte, 2<<20)
	for i := range data {
		data[i] = byte(i * 3)
	}
	client.AddPath(path, 0, simtcp.Options{CC: "cubic"}, func() {
		sid, err := client.Sess.CreateStream(0)
		if err != nil {
			t.Fatal(err)
		}
		client.Write(sid, data)
	})
	s.RunUntil(20 * time.Second)
	if !bytes.Equal(got, data) {
		t.Fatalf("received %d of %d bytes", len(got), len(data))
	}
}

func TestFailoverAcrossSimulatedPaths(t *testing.T) {
	s := sim.New()
	cfg := core.Config{EnableFailover: true, AckPeriod: 8, UserTimeout: 250 * time.Millisecond}
	client, server := Pair(s, cfg)
	client.AutoFailover = true
	server.AutoFailover = true
	p0 := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	p1 := sim.NewPath(s, mbps(25), 5*time.Millisecond)

	var got int
	client.OnEvent = func(ev core.Event) {
		if ev.Kind == core.EventStreamData {
			buf := make([]byte, 64<<10)
			for client.Sess.Readable(ev.Stream) > 0 {
				n, _ := client.Sess.Read(ev.Stream, buf)
				got += n
			}
		}
	}
	size := 8 << 20
	// Server pushes a download to the client over conn 0; conn 1 is a
	// standby path joined up front.
	client.AddPath(p0, 0, simtcp.Options{}, func() {
		client.AddPath(p1, 1, simtcp.Options{}, nil)
		sid, _ := server.Sess.CreateStream(0)
		server.Write(sid, make([]byte, size))
	})
	// Blackhole the primary mid-transfer.
	s.After(2*time.Second, func() { p0.SetDown(true) })
	s.RunUntil(60 * time.Second)
	if got != size {
		t.Fatalf("client received %d of %d after blackhole failover", got, size)
	}
	if server.Sess.Stats().Retransmits == 0 {
		t.Error("no TCPLS-level record retransmissions")
	}
}

func TestCoupledAggregationOverTwoSimulatedPaths(t *testing.T) {
	s := sim.New()
	client, server := Pair(s, core.Config{MaxRecordPayload: 16368})
	p0 := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	p1 := sim.NewPath(s, mbps(25), 5*time.Millisecond)

	var got int
	var doneAt sim.Time
	size := 30 << 20
	client.OnEvent = func(ev core.Event) {
		if ev.Kind == core.EventCoupledData {
			buf := make([]byte, 128<<10)
			for client.Sess.CoupledReadable() > 0 {
				got += client.Sess.ReadCoupled(buf)
			}
			if got >= size && doneAt == 0 {
				doneAt = s.Now()
			}
		}
	}
	client.AddPath(p0, 0, simtcp.Options{CC: "cubic"}, func() {
		s1, _ := server.Sess.CreateStream(0)
		server.Sess.SetCoupled(s1, true)
		client.AddPath(p1, 1, simtcp.Options{CC: "cubic"}, func() {
			s2, _ := server.Sess.CreateStream(1)
			server.Sess.SetCoupled(s2, true)
			server.WriteCoupled(make([]byte, size))
		})
	})
	s.RunUntil(30 * time.Second)
	if got < size {
		t.Fatalf("received %d of %d", got, size)
	}
	// Two 25 Mbps paths: the transfer must beat a single path's floor.
	singlePathTime := time.Duration(float64(size*8) / 25e6 * float64(time.Second))
	if doneAt >= singlePathTime {
		t.Errorf("aggregated transfer took %v, single path needs %v: no aggregation benefit", doneAt, singlePathTime)
	}
	if p0.AtoB.BytesSent == 0 || p1.AtoB.BytesSent == 0 {
		t.Error("a path carried nothing")
	}
	// Paper Fig. 11: roughly even split under round robin.
	lo, hi := p0.BtoA.BytesSent, p1.BtoA.BytesSent
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo*3 < hi {
		t.Errorf("imbalanced coupling: %d vs %d", p0.BtoA.BytesSent, p1.BtoA.BytesSent)
	}
}

func TestUserTimeoutDetectsBlackhole(t *testing.T) {
	s := sim.New()
	cfg := core.Config{EnableFailover: true, UserTimeout: 250 * time.Millisecond}
	client, server := Pair(s, cfg)
	p0 := sim.NewPath(s, mbps(25), 5*time.Millisecond)

	var failedAt sim.Time
	client.OnEvent = func(ev core.Event) {
		if ev.Kind == core.EventConnFailed && failedAt == 0 {
			failedAt = s.Now()
		}
	}
	client.AddPath(p0, 0, simtcp.Options{}, func() {
		sid, _ := server.Sess.CreateStream(0)
		server.Write(sid, make([]byte, 4<<20))
	})
	s.After(time.Second, func() { p0.SetDown(true) })
	s.RunUntil(5 * time.Second)
	if failedAt == 0 {
		t.Fatal("user timeout never fired")
	}
	// Detection = outage + UTO (plus one tick of slack).
	if failedAt < time.Second+250*time.Millisecond || failedAt > time.Second+500*time.Millisecond {
		t.Errorf("blackhole detected at %v, want ~1.25-1.5s", failedAt)
	}
}

func TestBPFProgramOverSimulatedSession(t *testing.T) {
	s := sim.New()
	client, server := Pair(s, core.Config{})
	p0 := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	prog := bytes.Repeat([]byte{0xaa}, 60000)
	var got []byte
	client.OnEvent = func(ev core.Event) {
		if ev.Kind == core.EventBPFCC {
			got = ev.Data
		}
	}
	client.AddPath(p0, 0, simtcp.Options{}, func() {
		server.Sess.SendBPFCC(0, prog)
		server.flush()
	})
	s.RunUntil(5 * time.Second)
	if !bytes.Equal(got, prog) {
		t.Fatalf("program corrupted: got %d bytes", len(got))
	}
}
