// Package simtcpls runs the real TCPLS protocol engine (internal/core) —
// actual record encryption, trial decryption, acknowledgments, SYNC
// resynchronization, coupled-stream reordering — over the simulated TCP
// stack. This is the configuration behind the paper's Mininet
// experiments (Figs. 8–13): protocol behaviour is the genuine article,
// only the network and kernel TCP underneath are modeled.
package simtcpls

import (
	"sort"
	"time"

	"tcpls/internal/core"
	"tcpls/internal/handshake"
	"tcpls/internal/record"
	"tcpls/internal/sim"
	"tcpls/internal/simtcp"
)

// epoch anchors simulated time onto the wall-clock type the engine uses.
var epoch = time.Unix(0, 0)

// simNow converts simulator time to engine time.
func simNow(s *sim.Sim) time.Time { return epoch.Add(s.Now()) }

// testSecrets builds the session secrets both endpoints share. The
// handshake itself is modeled as a time cost (see AddPath); its key
// schedule output is substituted with deterministic secrets so the
// record layer — the part TCPLS extends — runs for real.
func testSecrets() handshake.Secrets {
	suite, err := record.SuiteByID(record.TLSAES128GCMSHA256)
	if err != nil {
		panic(err)
	}
	mk := func(tag byte) []byte {
		b := make([]byte, 32)
		for i := range b {
			b[i] = tag
		}
		return b
	}
	return handshake.Secrets{Suite: suite, ClientApp: mk(0xc1), ServerApp: mk(0x51)}
}

// Endpoint is one side of a simulated TCPLS session.
type Endpoint struct {
	S     *sim.Sim
	Sess  *core.Session
	peer  *Endpoint
	conns map[uint32]*simtcp.Conn

	// OnEvent observes engine events after the endpoint's own handling.
	OnEvent func(ev core.Event)
	// AutoFailover resynchronizes streams of a failed connection onto
	// the lowest-numbered live connection automatically.
	AutoFailover bool
}

// Pair creates a connected client/server endpoint pair with no paths;
// attach paths with AddPath.
func Pair(s *sim.Sim, cfg core.Config) (client, server *Endpoint) {
	sec := testSecrets()
	client = &Endpoint{S: s, Sess: core.NewSession(core.RoleClient, sec, cfg), conns: map[uint32]*simtcp.Conn{}}
	server = &Endpoint{S: s, Sess: core.NewSession(core.RoleServer, sec, cfg), conns: map[uint32]*simtcp.Conn{}}
	client.peer = server
	server.peer = client
	if cfg.UserTimeout > 0 {
		tick := cfg.UserTimeout / 4
		var clientTick, serverTick func()
		clientTick = func() {
			client.Sess.Advance(simNow(s))
			client.pumpEvents()
			client.flush()
			s.After(tick, clientTick)
		}
		serverTick = func() {
			server.Sess.Advance(simNow(s))
			server.pumpEvents()
			server.flush()
			s.After(tick, serverTick)
		}
		s.After(tick, clientTick)
		s.After(tick, serverTick)
	}
	return client, server
}

// AddPath establishes a TCP connection over path and registers it with
// both engines under connID. The initial connection (connID 0) pays the
// TCP handshake plus one RTT of TLS handshake; joined connections pay
// the TCP handshake plus one RTT for the TCPLS JOIN exchange (Fig. 3).
// onReady, if non-nil, fires when the connection is usable.
func (e *Endpoint) AddPath(path *sim.Path, connID uint32, opts simtcp.Options, onReady func()) {
	e.TryPath(path, connID, opts, onReady, nil)
}

// TryPath is AddPath with a failure callback: connecting over a dead
// path retries its SYN with backoff and eventually reports failure —
// the cost structure of Fig. 9's path hunting.
func (e *Endpoint) TryPath(path *sim.Path, connID uint32, opts simtcp.Options, onReady, onFail func()) {
	cl, sv := simtcp.Connect(e.S, path, opts, opts)
	handshakeRTT := path.RTT() // TLS or JOIN round trip on top of TCP's

	ready := false
	if onFail != nil {
		cl.OnReset = func() { onFail() }
	}
	activate := func() {
		if ready || cl.Failed() || sv.Failed() {
			return
		}
		ready = true
		e.conns[connID] = cl
		e.peer.conns[connID] = sv
		e.Sess.AddConnection(connID, simNow(e.S))
		e.peer.Sess.AddConnection(connID, simNow(e.S))
		e.wire(cl, connID, e)
		e.wire(sv, connID, e.peer)
		e.retryFailover(connID)
		e.peer.retryFailover(connID)
		e.flush()
		e.peer.flush()
		if onReady != nil {
			onReady()
		}
	}
	cl.OnEstablished = func() {
		e.S.After(handshakeRTT, activate)
	}
}

// AddPathOn is AddPath over explicit (possibly shared) links — the
// shared-bottleneck topology of Fig. 12.
func (e *Endpoint) AddPathOn(toServer, toClient *sim.Link, connID uint32, opts simtcp.Options, onReady func()) {
	cl, sv := simtcp.ConnectOn(e.S, toServer, toClient, opts, opts)
	handshakeRTT := toServer.Delay + toClient.Delay
	ready := false
	activate := func() {
		if ready || cl.Failed() || sv.Failed() {
			return
		}
		ready = true
		e.conns[connID] = cl
		e.peer.conns[connID] = sv
		e.Sess.AddConnection(connID, simNow(e.S))
		e.peer.Sess.AddConnection(connID, simNow(e.S))
		e.wire(cl, connID, e)
		e.wire(sv, connID, e.peer)
		e.retryFailover(connID)
		e.peer.retryFailover(connID)
		e.flush()
		e.peer.flush()
		if onReady != nil {
			onReady()
		}
	}
	cl.OnEstablished = func() {
		e.S.After(handshakeRTT, activate)
	}
}

// retryFailover resynchronizes streams stranded on failed connections
// onto a freshly joined connection. A connection can fail before any
// replacement exists (the Fig. 8 blackhole); the join that arrives later
// must pick those streams up. FailedConnsWithStreams returns IDs sorted,
// so the resume order is deterministic and rejoined connections with
// IDs beyond the first few (fleet campaigns churn through dozens per
// session) are covered.
func (e *Endpoint) retryFailover(target uint32) {
	if !e.AutoFailover {
		return
	}
	// One merged call, not FailoverTo per conn: when several conns died
	// before this join, per-conn replays would interleave coupled
	// aggregation sequences on the wire and balloon the peer's reorder
	// heap (see core.FailoverAllTo).
	if n, err := e.Sess.FailoverAllTo(target); err == nil && n > 0 {
		e.flush()
	}
}

// wire connects a simtcp connection's receive path into an engine.
func (e *Endpoint) wire(c *simtcp.Conn, connID uint32, owner *Endpoint) {
	c.OnRecv = func(p []byte) {
		if owner.Sess.ConnFailed(connID) {
			// The real I/O wrapper parks its readLoop once the engine
			// declares a connection failed; late bytes (a stall lifting
			// after the user timeout fired) die at the socket. Mirroring
			// that here keeps count-closure exact: records lost with a
			// failed connection are attributable, records on live
			// connections always arrive.
			return
		}
		if err := owner.Sess.Receive(connID, p, simNow(owner.S)); err != nil {
			panic("simtcpls: engine receive: " + err.Error())
		}
		owner.pumpEvents()
		owner.flush()
	}
	c.OnReset = func() {
		owner.Sess.ReportConnFailed(connID)
		owner.pumpEvents()
		owner.flush()
	}
	c.OnAcked = func() {
		owner.flush()
	}
}

// flush frames engine output onto the TCP connections, in ascending
// conn-ID order: map-order iteration here would reshuffle the packet
// schedule between runs and break seed-reproducible fleet campaigns.
func (e *Endpoint) flush() {
	if err := e.Sess.Flush(); err != nil && err != core.ErrNotCoupled {
		panic("simtcpls: flush: " + err.Error())
	}
	ids := make([]uint32, 0, len(e.conns))
	for id := range e.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c := e.conns[id]
		out, err := e.Sess.Outgoing(id)
		if err != nil || len(out) == 0 {
			continue
		}
		if c.Failed() || e.Sess.ConnFailed(id) {
			continue // dropped with the connection
		}
		c.Write(out)
	}
}

// pumpEvents handles engine events (auto failover) and forwards them.
func (e *Endpoint) pumpEvents() {
	for _, ev := range e.Sess.Events() {
		if ev.Kind == core.EventConnFailed && e.AutoFailover {
			e.failover(ev.Conn)
		}
		if e.OnEvent != nil {
			e.OnEvent(ev)
		}
	}
}

// failover moves the streams of every failed connection (the one that
// just failed, plus any that failed with it — correlated faults kill
// several in one Advance) to the lowest live connection in one merged
// replay.
func (e *Endpoint) failover(failedID uint32) {
	live := e.Sess.Connections()
	if len(live) == 0 {
		return
	}
	target := live[0]
	for _, id := range live {
		if id < target {
			target = id
		}
	}
	if n, err := e.Sess.FailoverAllTo(target); err == nil && n > 0 {
		e.flush()
	}
}

// Conn exposes the underlying simulated TCP connection (for tcp_info-
// style statistics, CC swaps, and fault injection in experiments).
func (e *Endpoint) Conn(connID uint32) *simtcp.Conn { return e.conns[connID] }

// Failover explicitly resynchronizes streams of failedID onto targetID
// and transmits the SYNC + replayed records.
func (e *Endpoint) Failover(failedID, targetID uint32) error {
	if err := e.Sess.FailoverTo(failedID, targetID); err != nil {
		return err
	}
	e.flush()
	return nil
}

// Flush transmits any queued engine output (exported for experiment
// drivers that interact with the Session directly).
func (e *Endpoint) Flush() { e.flush() }

// Write queues stream data and transmits.
func (e *Endpoint) Write(streamID uint32, p []byte) error {
	if _, err := e.Sess.Write(streamID, p); err != nil {
		return err
	}
	e.flush()
	return nil
}

// WriteCoupled queues coupled-group data and transmits.
func (e *Endpoint) WriteCoupled(p []byte) error {
	if _, err := e.Sess.WriteCoupled(p); err != nil {
		return err
	}
	e.flush()
	return nil
}
