package chacha20poly1305

import (
	"encoding/binary"
	"math/bits"
)

// poly1305 implements the one-time authenticator from RFC 8439 §2.5 with
// three 64-bit limbs (the classic unsaturated-limb schoolbook approach).
type poly1305 struct {
	r0, r1     uint64 // clamped r
	s0, s1     uint64 // the "s" half of the one-time key
	h0, h1, h2 uint64 // accumulator, h2 holds the top bits of the 130-bit value
}

const (
	rMask0 = 0x0FFFFFFC0FFFFFFF
	rMask1 = 0x0FFFFFFC0FFFFFFC
)

func newPoly1305(key *[32]byte) *poly1305 {
	return &poly1305{
		r0: binary.LittleEndian.Uint64(key[0:8]) & rMask0,
		r1: binary.LittleEndian.Uint64(key[8:16]) & rMask1,
		s0: binary.LittleEndian.Uint64(key[16:24]),
		s1: binary.LittleEndian.Uint64(key[24:32]),
	}
}

type uint128 struct{ lo, hi uint64 }

func mul64(a, b uint64) uint128 {
	hi, lo := bits.Mul64(a, b)
	return uint128{lo, hi}
}

func add128(a, b uint128) uint128 {
	lo, c := bits.Add64(a.lo, b.lo, 0)
	hi, c := bits.Add64(a.hi, b.hi, c)
	if c != 0 {
		panic("poly1305: unexpected overflow")
	}
	return uint128{lo, hi}
}

func shiftRightBy2(a uint128) uint128 {
	a.lo = a.lo>>2 | (a.hi&3)<<62
	a.hi = a.hi >> 2
	return a
}

const maskLow2Bits = 0x3
const maskNotLow2Bits = ^uint64(maskLow2Bits)

// update absorbs msg into the accumulator, 16 bytes at a time. A final
// partial block is padded with a 0x01 byte per the RFC.
func (p *poly1305) update(msg []byte) {
	h0, h1, h2 := p.h0, p.h1, p.h2
	for len(msg) > 0 {
		var c uint64
		if len(msg) >= 16 {
			h0, c = bits.Add64(h0, binary.LittleEndian.Uint64(msg[0:8]), 0)
			h1, c = bits.Add64(h1, binary.LittleEndian.Uint64(msg[8:16]), c)
			h2 += c + 1
			msg = msg[16:]
		} else {
			var buf [16]byte
			copy(buf[:], msg)
			buf[len(msg)] = 1
			h0, c = bits.Add64(h0, binary.LittleEndian.Uint64(buf[0:8]), 0)
			h1, c = bits.Add64(h1, binary.LittleEndian.Uint64(buf[8:16]), c)
			h2 += c
			msg = nil
		}

		// Multiply the 130-bit accumulator by the clamped 124-bit r and
		// reduce modulo 2^130 - 5.
		h0r0 := mul64(h0, p.r0)
		h1r0 := mul64(h1, p.r0)
		h2r0 := mul64(h2, p.r0)
		h0r1 := mul64(h0, p.r1)
		h1r1 := mul64(h1, p.r1)
		h2r1 := mul64(h2, p.r1)

		// h2 is at most 7 and r is clamped, so h2r0/h2r1 fit in 64 bits.
		m0 := h0r0
		m1 := add128(h1r0, h0r1)
		m2 := add128(h2r0, h1r1)
		m3 := h2r1

		t0 := m0.lo
		t1, c := bits.Add64(m1.lo, m0.hi, 0)
		t2, c := bits.Add64(m2.lo, m1.hi, c)
		t3, _ := bits.Add64(m3.lo, m2.hi, c)

		// Split at bit 130 and fold the high part back in as 5 * top,
		// i.e. top + top>>2 after masking the low two bits into h2.
		h0, h1, h2 = t0, t1, t2&maskLow2Bits
		cc := uint128{t2 & maskNotLow2Bits, t3}

		h0, c = bits.Add64(h0, cc.lo, 0)
		h1, c = bits.Add64(h1, cc.hi, c)
		h2 += c
		cc = shiftRightBy2(cc)
		h0, c = bits.Add64(h0, cc.lo, 0)
		h1, c = bits.Add64(h1, cc.hi, c)
		h2 += c
	}
	p.h0, p.h1, p.h2 = h0, h1, h2
}

// tag finalizes the accumulator into out: (h mod 2^130-5 + s) mod 2^128.
func (p *poly1305) tag(out *[16]byte) {
	h0, h1, h2 := p.h0, p.h1, p.h2

	// Conditionally subtract p = 2^130 - 5 if h >= p (constant time).
	t0, b := bits.Sub64(h0, 0xFFFFFFFFFFFFFFFB, 0)
	t1, b := bits.Sub64(h1, 0xFFFFFFFFFFFFFFFF, b)
	_, b = bits.Sub64(h2, 3, b)
	mask := uint64(b) - 1 // all-ones when h >= p
	h0 = (t0 & mask) | (h0 &^ mask)
	h1 = (t1 & mask) | (h1 &^ mask)

	var c uint64
	h0, c = bits.Add64(h0, p.s0, 0)
	h1, _ = bits.Add64(h1, p.s1, c)

	binary.LittleEndian.PutUint64(out[0:8], h0)
	binary.LittleEndian.PutUint64(out[8:16], h1)
}
