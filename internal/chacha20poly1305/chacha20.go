// Package chacha20poly1305 implements the ChaCha20-Poly1305 AEAD
// (RFC 8439) using only the standard library, exposing it through the
// crypto/cipher.AEAD interface so the record layer can treat it exactly
// like AES-GCM.
//
// TLS 1.3 negotiates TLS_CHACHA20_POLY1305_SHA256 on hosts without AES
// hardware; the TCPLS paper's AEAD-forgery analysis (§3.3.1) is stated in
// terms of this cipher, so the reproduction carries a real implementation
// rather than assuming AES everywhere.
package chacha20poly1305

import (
	"encoding/binary"
	"math/bits"
)

// KeySize is the ChaCha20-Poly1305 key length in bytes.
const KeySize = 32

// NonceSize is the AEAD nonce length in bytes.
const NonceSize = 12

// TagSize is the Poly1305 authenticator length in bytes.
const TagSize = 16

const blockSize = 64

// chachaState holds the 16-word ChaCha20 state.
type chachaState [16]uint32

func initialState(key []byte, counter uint32, nonce []byte) chachaState {
	var s chachaState
	// "expand 32-byte k"
	s[0], s[1], s[2], s[3] = 0x61707865, 0x3320646e, 0x79622d32, 0x6b206574
	for i := 0; i < 8; i++ {
		s[4+i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	s[12] = counter
	s[13] = binary.LittleEndian.Uint32(nonce[0:])
	s[14] = binary.LittleEndian.Uint32(nonce[4:])
	s[15] = binary.LittleEndian.Uint32(nonce[8:])
	return s
}

func quarterRound(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d ^= a
	d = bits.RotateLeft32(d, 16)
	c += d
	b ^= c
	b = bits.RotateLeft32(b, 12)
	a += b
	d ^= a
	d = bits.RotateLeft32(d, 8)
	c += d
	b ^= c
	b = bits.RotateLeft32(b, 7)
	return a, b, c, d
}

// block computes one 64-byte keystream block into out.
func (s *chachaState) block(out *[blockSize]byte) {
	w := *s
	for i := 0; i < 10; i++ {
		// Column rounds.
		w[0], w[4], w[8], w[12] = quarterRound(w[0], w[4], w[8], w[12])
		w[1], w[5], w[9], w[13] = quarterRound(w[1], w[5], w[9], w[13])
		w[2], w[6], w[10], w[14] = quarterRound(w[2], w[6], w[10], w[14])
		w[3], w[7], w[11], w[15] = quarterRound(w[3], w[7], w[11], w[15])
		// Diagonal rounds.
		w[0], w[5], w[10], w[15] = quarterRound(w[0], w[5], w[10], w[15])
		w[1], w[6], w[11], w[12] = quarterRound(w[1], w[6], w[11], w[12])
		w[2], w[7], w[8], w[13] = quarterRound(w[2], w[7], w[8], w[13])
		w[3], w[4], w[9], w[14] = quarterRound(w[3], w[4], w[9], w[14])
	}
	for i := range w {
		binary.LittleEndian.PutUint32(out[4*i:], w[i]+s[i])
	}
}

// xorKeyStream XORs src into dst using the ChaCha20 keystream starting at
// the given block counter. dst and src may overlap entirely (in-place).
func xorKeyStream(dst, src, key, nonce []byte, counter uint32) {
	s := initialState(key, counter, nonce)
	var block [blockSize]byte
	for len(src) > 0 {
		s.block(&block)
		s[12]++
		n := len(src)
		if n > blockSize {
			n = blockSize
		}
		for i := 0; i < n; i++ {
			dst[i] = src[i] ^ block[i]
		}
		dst = dst[n:]
		src = src[n:]
	}
}
