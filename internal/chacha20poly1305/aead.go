package chacha20poly1305

import (
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrOpen is returned on authentication failure. The record layer's trial
// decryption (paper §3.3.1) depends on failed opens being cheap, clean
// errors rather than panics.
var ErrOpen = errors.New("chacha20poly1305: message authentication failed")

// aead implements cipher.AEAD for ChaCha20-Poly1305.
type aead struct {
	key [KeySize]byte
}

// New returns a ChaCha20-Poly1305 AEAD for a 32-byte key.
func New(key []byte) (cipher.AEAD, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("chacha20poly1305: key must be %d bytes, got %d", KeySize, len(key))
	}
	a := &aead{}
	copy(a.key[:], key)
	return a, nil
}

func (a *aead) NonceSize() int { return NonceSize }
func (a *aead) Overhead() int  { return TagSize }

// polyKey derives the one-time Poly1305 key from ChaCha20 block 0.
func (a *aead) polyKey(nonce []byte) [32]byte {
	s := initialState(a.key[:], 0, nonce)
	var block [blockSize]byte
	s.block(&block)
	var pk [32]byte
	copy(pk[:], block[:32])
	return pk
}

// updatePadded absorbs msg zero-padded to a 16-byte boundary. The AEAD
// construction pads with zeros to full blocks (RFC 8439 §2.8), which is
// not the same as Poly1305's own 0x01 padding of a trailing short block,
// so the tail is widened to a full block here before being absorbed.
func updatePadded(p *poly1305, msg []byte) {
	full := len(msg) / 16 * 16
	p.update(msg[:full])
	if rem := len(msg) - full; rem != 0 {
		var block [16]byte
		copy(block[:], msg[full:])
		p.update(block[:])
	}
}

// mac computes the RFC 8439 §2.8 AEAD MAC over aad and ciphertext.
func mac(polyKey *[32]byte, aad, ciphertext []byte) [16]byte {
	p := newPoly1305(polyKey)
	updatePadded(p, aad)
	updatePadded(p, ciphertext)
	var lengths [16]byte
	binary.LittleEndian.PutUint64(lengths[0:8], uint64(len(aad)))
	binary.LittleEndian.PutUint64(lengths[8:16], uint64(len(ciphertext)))
	p.update(lengths[:])
	var tag [16]byte
	p.tag(&tag)
	return tag
}

// Seal encrypts and authenticates plaintext, appending ciphertext||tag
// to dst. It supports in-place operation when dst shares storage with
// plaintext (as cipher.AEAD requires).
func (a *aead) Seal(dst, nonce, plaintext, aad []byte) []byte {
	if len(nonce) != NonceSize {
		panic("chacha20poly1305: bad nonce length")
	}
	pk := a.polyKey(nonce)
	n := len(dst)
	dst = append(dst, plaintext...)
	ct := dst[n : n+len(plaintext)]
	xorKeyStream(ct, ct, a.key[:], nonce, 1)
	tag := mac(&pk, aad, ct)
	return append(dst, tag[:]...)
}

// Open authenticates and decrypts ciphertext, appending the plaintext to
// dst. On failure dst is returned unmodified alongside ErrOpen.
func (a *aead) Open(dst, nonce, ciphertext, aad []byte) ([]byte, error) {
	if len(nonce) != NonceSize {
		panic("chacha20poly1305: bad nonce length")
	}
	if len(ciphertext) < TagSize {
		return dst, ErrOpen
	}
	pk := a.polyKey(nonce)
	ct := ciphertext[:len(ciphertext)-TagSize]
	wantTag := ciphertext[len(ciphertext)-TagSize:]
	tag := mac(&pk, aad, ct)
	if subtle.ConstantTimeCompare(tag[:], wantTag) != 1 {
		return dst, ErrOpen
	}
	n := len(dst)
	dst = append(dst, ct...)
	pt := dst[n : n+len(ct)]
	xorKeyStream(pt, pt, a.key[:], nonce, 1)
	return dst, nil
}
