package chacha20poly1305

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func fromHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// RFC 8439 §2.3.2: ChaCha20 block function test vector.
func TestChaChaBlockVector(t *testing.T) {
	key := fromHex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	nonce := fromHex(t, "000000090000004a00000000")
	s := initialState(key, 1, nonce)
	var block [64]byte
	s.block(&block)
	want := fromHex(t, "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4ed2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")
	if !bytes.Equal(block[:], want) {
		t.Fatalf("block mismatch:\n got %x\nwant %x", block, want)
	}
}

// RFC 8439 §2.4.2: ChaCha20 encryption test vector.
func TestChaChaEncryptVector(t *testing.T) {
	key := fromHex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	nonce := fromHex(t, "000000000000004a00000000")
	plaintext := []byte("Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.")
	want := fromHex(t, "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0bf91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d807ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab77937365af90bbf74a35be6b40b8eedf2785e42874d")
	got := make([]byte, len(plaintext))
	xorKeyStream(got, plaintext, key, nonce, 1)
	if !bytes.Equal(got, want) {
		t.Fatalf("ciphertext mismatch:\n got %x\nwant %x", got, want)
	}
}

// RFC 8439 §2.5.2: Poly1305 test vector.
func TestPoly1305Vector(t *testing.T) {
	var key [32]byte
	copy(key[:], fromHex(t, "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b"))
	msg := []byte("Cryptographic Forum Research Group")
	p := newPoly1305(&key)
	p.update(msg)
	var tag [16]byte
	p.tag(&tag)
	want := fromHex(t, "a8061dc1305136c6c22b8baf0c0127a9")
	if !bytes.Equal(tag[:], want) {
		t.Fatalf("tag mismatch:\n got %x\nwant %x", tag, want)
	}
}

// RFC 8439 §2.6.2: Poly1305 key generation vector.
func TestPolyKeyGenVector(t *testing.T) {
	key := fromHex(t, "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
	nonce := fromHex(t, "000000000001020304050607")
	a := &aead{}
	copy(a.key[:], key)
	pk := a.polyKey(nonce)
	want := fromHex(t, "8ad5a08b905f81cc815040274ab29471a833b637e3fd0da508dbb8e2fdd1a646")
	if !bytes.Equal(pk[:], want) {
		t.Fatalf("poly key mismatch:\n got %x\nwant %x", pk, want)
	}
}

// RFC 8439 §2.8.2: full AEAD test vector.
func TestAEADSealVector(t *testing.T) {
	key := fromHex(t, "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
	nonce := fromHex(t, "070000004041424344454647")
	aad := fromHex(t, "50515253c0c1c2c3c4c5c6c7")
	plaintext := []byte("Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.")
	wantCT := fromHex(t, "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d63dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b3692ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc3ff4def08e4b7a9de576d26586cec64b6116")
	wantTag := fromHex(t, "1ae10b594f09e26a7e902ecbd0600691")

	a, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	sealed := a.Seal(nil, nonce, plaintext, aad)
	if !bytes.Equal(sealed[:len(plaintext)], wantCT) {
		t.Fatalf("ciphertext mismatch:\n got %x\nwant %x", sealed[:len(plaintext)], wantCT)
	}
	if !bytes.Equal(sealed[len(plaintext):], wantTag) {
		t.Fatalf("tag mismatch:\n got %x\nwant %x", sealed[len(plaintext):], wantTag)
	}

	opened, err := a.Open(nil, nonce, sealed, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(opened, plaintext) {
		t.Fatal("round trip failed")
	}
}

func TestOpenRejectsTamperedInput(t *testing.T) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	a, _ := New(key)
	sealed := a.Seal(nil, nonce, []byte("hello tcpls"), []byte("aad"))

	for i := range sealed {
		tampered := append([]byte(nil), sealed...)
		tampered[i] ^= 0x80
		if _, err := a.Open(nil, nonce, tampered, []byte("aad")); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
	if _, err := a.Open(nil, nonce, sealed, []byte("AAD")); err == nil {
		t.Fatal("wrong AAD accepted")
	}
	if _, err := a.Open(nil, nonce, sealed[:TagSize-1], nil); err == nil {
		t.Fatal("short ciphertext accepted")
	}
}

func TestSealInPlace(t *testing.T) {
	key := make([]byte, KeySize)
	key[0] = 1
	nonce := make([]byte, NonceSize)
	a, _ := New(key)

	buf := make([]byte, 100, 100+TagSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	orig := append([]byte(nil), buf...)
	sealed := a.Seal(buf[:0], nonce, buf, nil)
	opened, err := a.Open(nil, nonce, sealed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(opened, orig) {
		t.Fatal("in-place seal corrupted data")
	}
}

func TestOpenInPlace(t *testing.T) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	a, _ := New(key)
	pt := []byte("zero copy receive path for tcpls records")
	sealed := a.Seal(nil, nonce, pt, nil)
	opened, err := a.Open(sealed[:0], nonce, sealed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(opened, pt) {
		t.Fatal("in-place open corrupted data")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(key [KeySize]byte, nonceSeed uint64, pt, aad []byte) bool {
		var nonce [NonceSize]byte
		binary.LittleEndian.PutUint64(nonce[:8], nonceSeed)
		a, err := New(key[:])
		if err != nil {
			return false
		}
		sealed := a.Seal(nil, nonce[:], pt, aad)
		if len(sealed) != len(pt)+TagSize {
			return false
		}
		opened, err := a.Open(nil, nonce[:], sealed, aad)
		return err == nil && bytes.Equal(opened, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistinctNoncesDistinctCiphertexts(t *testing.T) {
	key := make([]byte, KeySize)
	a, _ := New(key)
	f := func(n1, n2 uint64) bool {
		if n1 == n2 {
			return true
		}
		var nonce1, nonce2 [NonceSize]byte
		binary.LittleEndian.PutUint64(nonce1[:8], n1)
		binary.LittleEndian.PutUint64(nonce2[:8], n2)
		pt := []byte("same plaintext")
		c1 := a.Seal(nil, nonce1[:], pt, nil)
		c2 := a.Seal(nil, nonce2[:], pt, nil)
		return !bytes.Equal(c1, c2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSeal16K(b *testing.B) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	a, _ := New(key)
	pt := make([]byte, 16384)
	dst := make([]byte, 0, len(pt)+TagSize)
	b.SetBytes(int64(len(pt)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = a.Seal(dst[:0], nonce, pt, nil)
	}
}
