package sched

import (
	"testing"
	"time"
)

func views(n int) []PathView {
	out := make([]PathView, n)
	for i := range out {
		out[i] = PathView{Stream: uint32(2 + 2*i), Conn: uint32(i)}
	}
	return out
}

func TestRoundRobinCycles(t *testing.T) {
	s := RoundRobin()
	v := views(3)
	for i := uint64(0); i < 9; i++ {
		if got, want := s.Pick(i, v), int(i%3); got != want {
			t.Fatalf("pick(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestLowestRTTPicksFastestAndProbes(t *testing.T) {
	s := LowestRTT()
	v := views(3)
	v[0].SRTT, v[0].HasRTT = 30*time.Millisecond, true
	v[1].SRTT, v[1].HasRTT = 5*time.Millisecond, true
	v[2].HasRTT = false

	counts := make([]int, 3)
	for i := uint64(0); i < 100; i++ {
		counts[s.Pick(i, v)]++
	}
	if counts[1] < counts[0] || counts[1] < counts[2] {
		t.Fatalf("fastest path not preferred: %v", counts)
	}
	if counts[2] == 0 {
		t.Fatalf("unmeasured path never probed: %v", counts)
	}
	if counts[0] != 0 {
		t.Fatalf("slowest measured path picked: %v", counts)
	}
}

func TestLowestRTTAllUnknownFallsBackToRoundRobin(t *testing.T) {
	s := LowestRTT()
	v := views(2)
	seen := map[int]bool{}
	for i := uint64(0); i < 4; i++ {
		seen[s.Pick(i, v)] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("expected both paths used, got %v", seen)
	}
}

func TestWeightedRateProportionalShares(t *testing.T) {
	s := WeightedRate()
	v := views(2)
	v[0].DeliveryRate, v[0].HasRate = 1_000_000, true // 1 MB/s
	v[1].DeliveryRate, v[1].HasRate = 4_000_000, true // 4 MB/s

	counts := make([]int, 2)
	for i := uint64(0); i < 1000; i++ {
		counts[s.Pick(i, v)]++
	}
	// Expect an 1:4 split, i.e. ~200/~800.
	if counts[0] < 150 || counts[0] > 250 {
		t.Fatalf("share not proportional to rate: %v", counts)
	}
}

func TestWeightedRateColdStartIsFair(t *testing.T) {
	s := WeightedRate()
	v := views(2) // no rate estimates at all
	counts := make([]int, 2)
	for i := uint64(0); i < 100; i++ {
		counts[s.Pick(i, v)]++
	}
	if counts[0] != 50 || counts[1] != 50 {
		t.Fatalf("cold start not fair: %v", counts)
	}
}

func TestWeightedRateUnknownPathGetsMeanShare(t *testing.T) {
	s := WeightedRate()
	v := views(2)
	v[0].DeliveryRate, v[0].HasRate = 2_000_000, true
	// v[1] unknown: weighted at the mean known rate, so ~50/50.
	counts := make([]int, 2)
	for i := uint64(0); i < 100; i++ {
		counts[s.Pick(i, v)]++
	}
	if counts[1] < 40 || counts[1] > 60 {
		t.Fatalf("unknown path starved or flooded: %v", counts)
	}
}

func TestRedundantPicksAll(t *testing.T) {
	s := Redundant()
	if got := s.Pick(0, views(3)); got != PickAll {
		t.Fatalf("Pick = %d, want PickAll (%d)", got, PickAll)
	}
}

func TestFuncAdapterSeesStreamIDs(t *testing.T) {
	var gotIdx uint64
	var gotStreams []uint32
	s := Func(func(recordIdx uint64, streams []uint32) int {
		gotIdx = recordIdx
		gotStreams = append([]uint32(nil), streams...)
		return 1
	})
	v := views(3)
	if got := s.Pick(7, v); got != 1 {
		t.Fatalf("Pick = %d", got)
	}
	if gotIdx != 7 {
		t.Fatalf("recordIdx = %d", gotIdx)
	}
	if len(gotStreams) != 3 || gotStreams[0] != 2 || gotStreams[2] != 6 {
		t.Fatalf("streams = %v", gotStreams)
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"roundrobin": "roundrobin", "rr": "roundrobin",
		"lowrtt": "lowrtt", "lowestrtt": "lowrtt",
		"rate": "rate", "weightedrate": "rate",
		"redundant": "redundant",
	} {
		s, ok := ByName(name)
		if !ok || s.Name() != want {
			t.Fatalf("ByName(%q) = %v, %v", name, s, ok)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Fatal("bogus name accepted")
	}
	if _, ok := ByName(""); ok {
		t.Fatal("empty name accepted")
	}
}

func TestMetricsRTTEstimator(t *testing.T) {
	m := NewMetrics()
	now := time.Unix(1000, 0)
	m.OnSent(1, 1000)
	m.OnAcked(1, 1000, 40*time.Millisecond, now)
	st, ok := m.Snapshot(1)
	if !ok || !st.HasRTT {
		t.Fatal("no RTT after first sample")
	}
	if st.SRTT != 40*time.Millisecond || st.RTTVar != 20*time.Millisecond {
		t.Fatalf("first sample: srtt=%v rttvar=%v", st.SRTT, st.RTTVar)
	}
	// Second sample: srtt = 7/8*40 + 1/8*80 = 45ms.
	m.OnAcked(1, 0, 80*time.Millisecond, now.Add(time.Second))
	st, _ = m.Snapshot(1)
	if st.SRTT != 45*time.Millisecond {
		t.Fatalf("srtt after second sample = %v, want 45ms", st.SRTT)
	}
	if st.InFlight != 0 {
		t.Fatalf("inflight = %d", st.InFlight)
	}
}

func TestMetricsKernelSeedThenAckWins(t *testing.T) {
	m := NewMetrics()
	m.UpdateKernel(1, 10*time.Millisecond, 5*time.Millisecond, 0)
	st, _ := m.Snapshot(1)
	if !st.HasRTT || st.SRTT != 10*time.Millisecond {
		t.Fatalf("kernel seed not applied: %+v", st)
	}
	// ACK sample replaces the seed outright.
	m.OnAcked(1, 0, 50*time.Millisecond, time.Time{})
	st, _ = m.Snapshot(1)
	if st.SRTT != 50*time.Millisecond {
		t.Fatalf("ack sample did not take over: %v", st.SRTT)
	}
	// Further kernel refreshes no longer touch the estimate.
	m.UpdateKernel(1, 1*time.Millisecond, 1*time.Millisecond, 0)
	st, _ = m.Snapshot(1)
	if st.SRTT != 50*time.Millisecond {
		t.Fatalf("kernel overrode ack estimate: %v", st.SRTT)
	}
}

func TestMetricsDeliveryRate(t *testing.T) {
	m := NewMetrics()
	now := time.Unix(2000, 0)
	m.OnAcked(1, 64_000, 0, now) // establishes the interval start
	m.OnAcked(1, 100_000, 0, now.Add(100*time.Millisecond))
	st, _ := m.Snapshot(1)
	if !st.HasRate {
		t.Fatal("no rate after timed acks")
	}
	if st.DeliveryRate < 900_000 || st.DeliveryRate > 1_100_000 {
		t.Fatalf("rate = %.0f B/s, want ~1MB/s", st.DeliveryRate)
	}
	// Kernel hint is only a fallback: it must not disturb the EWMA.
	m.UpdateKernel(1, 0, 0, 9_999_999)
	st, _ = m.Snapshot(1)
	if st.DeliveryRate > 1_100_000 {
		t.Fatalf("kernel hint overrode ack rate: %.0f", st.DeliveryRate)
	}
}

func TestMetricsKernelRateFallback(t *testing.T) {
	m := NewMetrics()
	m.UpdateKernel(1, 0, 0, 3_000_000)
	st, _ := m.Snapshot(1)
	if !st.HasRate || st.DeliveryRate != 3_000_000 {
		t.Fatalf("kernel rate hint not used: %+v", st)
	}
	v := PathView{Conn: 1}
	m.Fill(&v)
	if !v.HasRate || v.DeliveryRate != 3_000_000 {
		t.Fatalf("Fill missed kernel rate: %+v", v)
	}
}

func TestMetricsLossAndForget(t *testing.T) {
	m := NewMetrics()
	m.OnSent(2, 500)
	m.OnLost(2, 500)
	st, _ := m.Snapshot(2)
	if st.Losses != 1 || st.InFlight != 0 {
		t.Fatalf("loss accounting: %+v", st)
	}
	m.Forget(2)
	if _, ok := m.Snapshot(2); ok {
		t.Fatal("Forget left state behind")
	}
}

func TestMetricsConcurrentAccess(t *testing.T) {
	// The kernel refresher races the engine by design; -race keeps us
	// honest here.
	m := NewMetrics()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			m.UpdateKernel(1, 10*time.Millisecond, 5*time.Millisecond, 1e6)
			m.Snapshot(1)
		}
	}()
	now := time.Unix(3000, 0)
	for i := 0; i < 1000; i++ {
		m.OnSent(1, 100)
		m.OnAcked(1, 100, 20*time.Millisecond, now.Add(time.Duration(i)*time.Millisecond))
		v := PathView{Conn: 1}
		m.Fill(&v)
	}
	<-done
}
