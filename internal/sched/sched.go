// Package sched is the sender-side multipath record-scheduling
// subsystem (paper §3.3.3): a path-metrics engine that fuses
// record-level acknowledgment samples with periodic kernel TCP_INFO
// snapshots, and pluggable stateful schedulers the protocol engine
// consults once per coupled record.
//
// The package is transport-agnostic. internal/core feeds it events
// (record sent / acked / lost), builds PathView snapshots before each
// scheduling round, and applies the scheduler's picks; the public tcpls
// wrapper adds the kernel refresh loop and re-exports the constructors.
package sched

import "time"

// PickAll is a sentinel Pick result: seal the record on every candidate
// path (the Redundant scheduler). The receiver's aggregation-sequence
// reorder buffer drops the duplicate copies, so exactly one survives.
const PickAll = -1

// PathView is a read-only snapshot of one candidate path, built by the
// engine from the Metrics store just before a scheduling round. One
// view per coupled stream; a connection carrying several coupled
// streams appears once per stream with identical metric fields.
type PathView struct {
	// Stream is the coupled stream this view represents; Conn is the
	// TCP connection (path) it is attached to.
	Stream uint32
	Conn   uint32
	// SRTT / RTTVar are the fused smoothed round-trip estimates:
	// seeded from kernel TCP_INFO, taken over by record-level ACK
	// samples once those exist (they measure the full TCPLS path, not
	// just the first TCP hop). Valid only when HasRTT.
	SRTT   time.Duration
	RTTVar time.Duration
	// InFlight is bytes sealed onto this path and not yet acknowledged
	// (tracked only when failover-level acknowledgments are enabled).
	InFlight uint64
	// Losses counts records declared lost on this path (failover
	// replays).
	Losses uint64
	// DeliveryRate is an EWMA of acknowledged bytes per second, falling
	// back to the kernel's cwnd*mss/srtt hint before any ACK sample.
	// Valid only when HasRate.
	DeliveryRate float64
	HasRTT       bool
	HasRate      bool
}

// Scheduler picks the path that carries each coupled record.
// Implementations may keep state: the engine serializes every call —
// Pick and the On* hooks alike — under the session lock, and one
// instance must not be shared across sessions.
//
// Pick receives the running aggregation-sequence index and one view per
// coupled stream (never empty). It returns an index into paths, or
// PickAll to duplicate the record across every path. An out-of-range
// result falls back to path 0 and is surfaced as a sched_invalid trace
// event — see Session.SetScheduler for the contract.
type Scheduler interface {
	// Name identifies the scheduler in traces and configuration.
	Name() string
	Pick(recordIdx uint64, paths []PathView) int
	// OnSent / OnAcked / OnLost observe per-path record outcomes so a
	// stateful scheduler can learn without consulting the Metrics
	// store. rtt is the clean ACK sample for this acknowledgment, or 0
	// when Karn's algorithm rejected it.
	OnSent(conn uint32, bytes int)
	OnAcked(conn uint32, bytes int, rtt time.Duration)
	OnLost(conn uint32, bytes int)
}

// NopHooks provides no-op observer hooks for schedulers that rely
// solely on PathView snapshots. Embed it to satisfy Scheduler.
type NopHooks struct{}

// OnSent implements Scheduler.
func (NopHooks) OnSent(uint32, int) {}

// OnAcked implements Scheduler.
func (NopHooks) OnAcked(uint32, int, time.Duration) {}

// OnLost implements Scheduler.
func (NopHooks) OnLost(uint32, int) {}

// RoundRobin cycles through the paths by record index — the paper's
// default policy (§5.1) and the seed's legacy behaviour. It ignores
// path metrics entirely.
func RoundRobin() Scheduler { return roundRobin{} }

type roundRobin struct{ NopHooks }

func (roundRobin) Name() string { return "roundrobin" }

func (roundRobin) Pick(recordIdx uint64, paths []PathView) int {
	return int(recordIdx % uint64(len(paths)))
}

// LowestRTT prefers the path with the smallest fused SRTT — the
// latency-sensitive policy. Paths without an RTT estimate are probed
// with a small fraction of records so their estimates converge; with no
// estimates at all it degrades to round-robin.
func LowestRTT() Scheduler { return &lowestRTT{} }

type lowestRTT struct {
	NopHooks
	probe uint64
}

func (l *lowestRTT) Name() string { return "lowrtt" }

func (l *lowestRTT) Pick(recordIdx uint64, paths []PathView) int {
	unknown := -1
	best, bestRTT := -1, time.Duration(0)
	for i := range paths {
		p := &paths[i]
		if !p.HasRTT {
			if unknown < 0 {
				unknown = i
			}
			continue
		}
		if best < 0 || p.SRTT < bestRTT {
			best, bestRTT = i, p.SRTT
		}
	}
	if best < 0 {
		return int(recordIdx % uint64(len(paths))) // nothing measured yet
	}
	if unknown >= 0 {
		// Send every fourth record to an unmeasured path: enough to
		// bootstrap its estimate, cheap if it turns out slow.
		if l.probe++; l.probe%4 == 0 {
			return unknown
		}
	}
	return best
}

// WeightedRate distributes records proportionally to each path's
// delivery rate — the bandwidth-aggregation workhorse that keeps a fast
// path from being capped by a slow one. It is a smooth weighted
// round-robin (deficit credits), so the interleaving stays even rather
// than bursty. Paths without a rate estimate receive the mean known
// rate, which makes the cold start behave like round-robin until
// acknowledgments arrive.
func WeightedRate() Scheduler {
	return &weightedRate{credit: make(map[uint32]float64)}
}

type weightedRate struct {
	NopHooks
	credit map[uint32]float64 // smooth-WRR deficit, keyed by conn ID
}

func (w *weightedRate) Name() string { return "rate" }

func (w *weightedRate) Pick(recordIdx uint64, paths []PathView) int {
	var known float64
	var nKnown int
	for i := range paths {
		if p := &paths[i]; p.HasRate && p.DeliveryRate > 0 {
			known += p.DeliveryRate
			nKnown++
		}
	}
	mean := 1.0 // all-unknown: equal weights, i.e. round-robin
	if nKnown > 0 {
		mean = known / float64(nKnown)
	}
	// Smooth WRR: every path earns its weight in credit each round, the
	// richest path carries the record and is charged the round total —
	// long-run shares converge to weight/total with minimal burstiness.
	best := 0
	var total, bestCredit float64
	for i := range paths {
		wt := mean
		if p := &paths[i]; p.HasRate && p.DeliveryRate > 0 {
			wt = p.DeliveryRate
		}
		total += wt
		c := w.credit[paths[i].Conn] + wt
		w.credit[paths[i].Conn] = c
		if i == 0 || c > bestCredit {
			best, bestCredit = i, c
		}
	}
	w.credit[paths[best].Conn] -= total
	return best
}

// Redundant seals every record on every path: failover-sensitive
// traffic pays duplicate bandwidth so the loss or failure of any single
// path never stalls delivery. The receiver's aggregation-sequence
// reordering deduplicates, delivering exactly one copy.
func Redundant() Scheduler { return redundant{} }

type redundant struct{ NopHooks }

func (redundant) Name() string { return "redundant" }

func (redundant) Pick(uint64, []PathView) int { return PickAll }

// Func adapts a legacy closure scheduler — f(recordIdx, coupled stream
// IDs) — to the Scheduler interface; it is how the original
// Session.SetScheduler API keeps working unchanged.
func Func(f func(recordIdx uint64, streams []uint32) int) Scheduler {
	return &funcSched{f: f}
}

type funcSched struct {
	NopHooks
	f   func(uint64, []uint32) int
	ids []uint32 // reused across Picks to avoid a per-record allocation
}

func (fs *funcSched) Name() string { return "func" }

func (fs *funcSched) Pick(recordIdx uint64, paths []PathView) int {
	fs.ids = fs.ids[:0]
	for i := range paths {
		fs.ids = append(fs.ids, paths[i].Stream)
	}
	return fs.f(recordIdx, fs.ids)
}

// ByName resolves a built-in scheduler from its configuration name.
func ByName(name string) (Scheduler, bool) {
	switch name {
	case "roundrobin", "rr":
		return RoundRobin(), true
	case "lowrtt", "lowestrtt":
		return LowestRTT(), true
	case "rate", "weightedrate":
		return WeightedRate(), true
	case "redundant":
		return Redundant(), true
	}
	return nil, false
}
