package sched

import (
	"sync"
	"time"
)

// Metrics is the per-session path-metrics engine: one entry per TCP
// connection, fused from two signal sources. Record-level
// acknowledgments (available whenever failover's ACK machinery is on)
// drive an RFC 6298 SRTT/RTTVar estimator, a bytes-in-flight gauge, a
// loss counter, and a delivery-rate EWMA; periodic kernel TCP_INFO
// snapshots seed the estimates before ACK samples exist and keep
// standing in where acknowledgments are disabled.
//
// All methods are safe for concurrent use: the protocol engine updates
// it under the session lock while the kernel refresher ticks on its own
// goroutine.
type Metrics struct {
	mu    sync.Mutex
	paths map[uint32]*pathState
}

// rateGain is the EWMA weight of a fresh delivery-rate sample.
const rateGain = 0.25

type pathState struct {
	srtt   time.Duration
	rttvar time.Duration
	hasRTT bool
	ackRTT bool // at least one ACK sample folded in; kernel stops seeding

	inFlight uint64
	losses   uint64

	rate       float64 // ACK-driven EWMA, bytes per second
	hasRate    bool
	kernelRate float64 // cwnd*mss/srtt hint, used until hasRate
	lastAck    time.Time
	ackedSince uint64
}

// PathStats is an exported snapshot of one path's fused metrics.
type PathStats struct {
	SRTT         time.Duration
	RTTVar       time.Duration
	HasRTT       bool
	InFlight     uint64
	Losses       uint64
	DeliveryRate float64 // bytes per second
	HasRate      bool
}

// NewMetrics returns an empty metrics store.
func NewMetrics() *Metrics {
	return &Metrics{paths: make(map[uint32]*pathState)}
}

// path returns conn's state, creating it on first touch. Caller holds mu.
func (m *Metrics) path(conn uint32) *pathState {
	p, ok := m.paths[conn]
	if !ok {
		p = &pathState{}
		m.paths[conn] = p
	}
	return p
}

// OnSent records bytes sealed onto conn and not yet acknowledged.
func (m *Metrics) OnSent(conn uint32, bytes int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.path(conn).inFlight += uint64(bytes)
}

// OnAcked records an acknowledgment covering bytes on conn. rtt > 0
// feeds the RFC 6298 estimator; pass 0 when Karn's algorithm rejects
// the sample (retransmitted records). now timestamps the ack for the
// delivery-rate EWMA; the zero time skips rate sampling.
func (m *Metrics) OnAcked(conn uint32, bytes int, rtt time.Duration, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.path(conn)
	if p.inFlight >= uint64(bytes) {
		p.inFlight -= uint64(bytes)
	} else {
		p.inFlight = 0
	}
	if rtt > 0 {
		p.observeRTT(rtt)
		p.ackRTT = true
	}
	if now.IsZero() {
		return
	}
	p.ackedSince += uint64(bytes)
	if p.lastAck.IsZero() {
		p.lastAck = now
		p.ackedSince = 0
		return
	}
	elapsed := now.Sub(p.lastAck)
	if elapsed <= 0 {
		return // several acks in one receive batch: keep accumulating
	}
	sample := float64(p.ackedSince) / elapsed.Seconds()
	if p.hasRate {
		p.rate = (1-rateGain)*p.rate + rateGain*sample
	} else {
		p.rate, p.hasRate = sample, true
	}
	p.lastAck = now
	p.ackedSince = 0
}

// observeRTT folds one clean sample into the RFC 6298 estimator.
func (p *pathState) observeRTT(s time.Duration) {
	if !p.hasRTT || !p.ackRTT {
		// First ACK sample owns the estimate, even over a kernel seed:
		// it measures the full TCPLS path.
		p.srtt, p.rttvar, p.hasRTT = s, s/2, true
		return
	}
	d := p.srtt - s
	if d < 0 {
		d = -d
	}
	p.rttvar = (3*p.rttvar + d) / 4
	p.srtt = (7*p.srtt + s) / 8
}

// OnLost records one record of bytes declared lost on conn (failover
// replay): the loss counter advances and the bytes leave flight — the
// replay re-enters it on the target path.
func (m *Metrics) OnLost(conn uint32, bytes int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.path(conn)
	if p.inFlight >= uint64(bytes) {
		p.inFlight -= uint64(bytes)
	} else {
		p.inFlight = 0
	}
	p.losses++
}

// UpdateKernel folds a TCP_INFO snapshot into conn's estimates: the
// kernel view owns SRTT/RTTVar until the first ACK sample lands, and
// rateHint (cwnd*mss/srtt, bytes per second, 0 = none) stands in for
// the delivery rate until ACK-driven samples exist. ACK samples win
// permanently because they see the whole path, not just the first hop.
func (m *Metrics) UpdateKernel(conn uint32, rtt, rttvar time.Duration, rateHint float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.path(conn)
	if rtt > 0 && !p.ackRTT {
		p.srtt, p.rttvar, p.hasRTT = rtt, rttvar, true
	}
	if rateHint > 0 {
		p.kernelRate = rateHint
	}
}

// Fill populates v's metric fields from the state keyed by v.Conn.
func (m *Metrics) Fill(v *PathView) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.paths[v.Conn]
	if !ok {
		return
	}
	v.SRTT, v.RTTVar, v.HasRTT = p.srtt, p.rttvar, p.hasRTT
	v.InFlight, v.Losses = p.inFlight, p.losses
	switch {
	case p.hasRate:
		v.DeliveryRate, v.HasRate = p.rate, true
	case p.kernelRate > 0:
		v.DeliveryRate, v.HasRate = p.kernelRate, true
	}
}

// Snapshot returns conn's current fused stats.
func (m *Metrics) Snapshot(conn uint32) (PathStats, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.paths[conn]
	if !ok {
		return PathStats{}, false
	}
	st := PathStats{
		SRTT:     p.srtt,
		RTTVar:   p.rttvar,
		HasRTT:   p.hasRTT,
		InFlight: p.inFlight,
		Losses:   p.losses,
	}
	switch {
	case p.hasRate:
		st.DeliveryRate, st.HasRate = p.rate, true
	case p.kernelRate > 0:
		st.DeliveryRate, st.HasRate = p.kernelRate, true
	}
	return st, true
}

// Forget drops conn's state (connection closed or failed for good).
func (m *Metrics) Forget(conn uint32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.paths, conn)
}
