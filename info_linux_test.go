//go:build linux

package tcpls

import (
	"testing"
	"time"
)

// put32 writes v little-endian at off, the layout of struct tcp_info on
// every Linux platform Go supports.
func put32(buf []byte, off int, v uint32) {
	buf[off] = byte(v)
	buf[off+1] = byte(v >> 8)
	buf[off+2] = byte(v >> 16)
	buf[off+3] = byte(v >> 24)
}

func TestParseTCPInfoOffsets(t *testing.T) {
	buf := make([]byte, tcpInfoLen)
	put32(buf, offRTT, 25_000)   // 25ms in microseconds
	put32(buf, offRTTVar, 5_000) // 5ms
	put32(buf, offSndCwnd, 42)   // segments
	put32(buf, offSndMSS, 1448)  // bytes
	put32(buf, offPMTU, 1500)    // bytes
	put32(buf, offRetrans, 3)    // current retransmit count
	put32(buf, offTotalRe, 17)   // lifetime retransmits

	var info ConnInfo
	parseTCPInfo(buf, uint32(len(buf)), &info)
	if !info.Kernel {
		t.Fatal("full-length buffer not accepted")
	}
	if info.RTT != 25*time.Millisecond {
		t.Errorf("RTT = %v, want 25ms", info.RTT)
	}
	if info.RTTVar != 5*time.Millisecond {
		t.Errorf("RTTVar = %v, want 5ms", info.RTTVar)
	}
	if info.SndCwnd != 42 {
		t.Errorf("SndCwnd = %d, want 42", info.SndCwnd)
	}
	if info.SndMSS != 1448 {
		t.Errorf("SndMSS = %d, want 1448", info.SndMSS)
	}
	if info.PMTU != 1500 {
		t.Errorf("PMTU = %d, want 1500", info.PMTU)
	}
	if info.Retrans != 17 {
		t.Errorf("Retrans = %d, want tcpi_total_retrans (17)", info.Retrans)
	}
}

func TestParseTCPInfoTruncatedKernelStruct(t *testing.T) {
	// An old kernel returning fewer bytes than we need must leave the
	// info untouched rather than decode garbage.
	buf := make([]byte, tcpInfoLen)
	put32(buf, offRTT, 99_999)
	var info ConnInfo
	parseTCPInfo(buf, offSndCwnd+3, &info) // one byte short of snd_cwnd
	if info.Kernel || info.RTT != 0 {
		t.Fatalf("truncated buffer parsed: %+v", info)
	}
}

func TestParseTCPInfoMidLengthFallsBackToCurrentRetrans(t *testing.T) {
	// A kernel struct that covers snd_cwnd but not total_retrans uses
	// the running tcpi_retrans counter instead.
	buf := make([]byte, tcpInfoLen)
	put32(buf, offSndCwnd, 10)
	put32(buf, offSndMSS, 1448)
	put32(buf, offRetrans, 7)
	put32(buf, offTotalRe, 1234) // beyond gotLen: must be ignored
	var info ConnInfo
	parseTCPInfo(buf, offSndCwnd+4, &info)
	if !info.Kernel {
		t.Fatal("mid-length buffer rejected")
	}
	if info.Retrans != 7 {
		t.Errorf("Retrans = %d, want tcpi_retrans (7)", info.Retrans)
	}
	if info.SndCwnd != 10 {
		t.Errorf("SndCwnd = %d", info.SndCwnd)
	}
}

func TestParseTCPInfoGotLenClampedToBuffer(t *testing.T) {
	// A kernel reporting more bytes than the caller's buffer must not
	// read out of bounds (the syscall cannot return more than it was
	// given, but the parser should not trust the length blindly).
	buf := make([]byte, offSndCwnd+4)
	put32(buf, offSndCwnd, 5)
	var info ConnInfo
	parseTCPInfo(buf, 4096, &info)
	if !info.Kernel || info.SndCwnd != 5 {
		t.Fatalf("clamped parse failed: %+v", info)
	}
}
