package tcpls

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"tcpls/internal/handshake"
)

// ReconnectConfig tunes the recovery supervisor (Config.Reconnect). The
// supervisor arms when the last TCP connection of a failover-enabled
// TCPLS session fails: the client re-dials remembered peer addresses
// through the session-join path (Fig. 3) with capped exponential backoff
// plus jitter, and resumes parked streams via failover replay (Fig. 4)
// once a join lands. The server side cannot dial the client, so it holds
// the parked state for Deadline waiting for the peer to rejoin. When the
// budget is exhausted the session dies with ErrSessionDead.
type ReconnectConfig struct {
	// Disabled turns automatic re-dialing off. Streams stay parked for
	// Deadline (an application can still JoinPath manually); then the
	// session dies with ErrSessionDead.
	Disabled bool
	// MaxAttempts bounds redial rounds (default 8; each round walks all
	// candidate addresses). Zero means the default, not unlimited.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff between redial rounds
	// (default 50ms). The first round fires immediately.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 3s).
	MaxDelay time.Duration
	// Deadline bounds the whole recovery, redialing or not (default 15s).
	Deadline time.Duration
	// Jitter, when non-nil, supplies the randomness for backoff jitter
	// instead of the process-global math/rand source, so reconnect
	// timing replays exactly under a fixed seed (the fleet/DES harness
	// derives one from its scenario seed). The source is used only from
	// the session's single recovery-supervisor goroutine; sharing one
	// *rand.Rand across sessions requires external locking and forfeits
	// per-session reproducibility.
	Jitter *rand.Rand
}

// Recovery defaults.
const (
	defaultReconnectAttempts = 8
	defaultReconnectBase     = 50 * time.Millisecond
	defaultReconnectMax      = 3 * time.Second
	defaultReconnectDeadline = 15 * time.Second
)

func (rc ReconnectConfig) withDefaults() ReconnectConfig {
	if rc.MaxAttempts <= 0 {
		rc.MaxAttempts = defaultReconnectAttempts
	}
	if rc.BaseDelay <= 0 {
		rc.BaseDelay = defaultReconnectBase
	}
	if rc.MaxDelay <= 0 {
		rc.MaxDelay = defaultReconnectMax
	}
	if rc.MaxDelay < rc.BaseDelay {
		rc.MaxDelay = rc.BaseDelay
	}
	if rc.Deadline <= 0 {
		rc.Deadline = defaultReconnectDeadline
	}
	return rc
}

// reconnectDelay returns the pause before redial round attempt (1-based).
// Round 1 is immediate; round n waits BaseDelay·2^(n-2) capped at
// MaxDelay, jittered into [d/2, d] so a fleet of clients does not
// stampede the server the instant a shared outage lifts.
func reconnectDelay(rc ReconnectConfig, attempt int) time.Duration {
	if attempt <= 1 {
		return 0
	}
	d := rc.BaseDelay
	for i := 2; i < attempt; i++ {
		d *= 2
		if d >= rc.MaxDelay {
			d = rc.MaxDelay
			break
		}
	}
	if d > rc.MaxDelay {
		d = rc.MaxDelay
	}
	half := d / 2
	if rc.Jitter != nil {
		return half + time.Duration(rc.Jitter.Int63n(int64(half)+1))
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// ErrSessionDead is the terminal error of an exhausted recovery: every
// path failed and neither failover nor reconnection could revive the
// session within its budget. Test with errors.Is; the concrete error is
// a *SessionDeadError carrying the attempt count and last dial failure.
var ErrSessionDead = errors.New("tcpls: session dead")

// SessionDeadError reports how recovery was lost.
type SessionDeadError struct {
	// Attempts is the number of redial rounds performed (zero when
	// reconnection was disabled or the session was a server).
	Attempts int
	// LastErr is the final redial failure, if any.
	LastErr error
}

func (e *SessionDeadError) Error() string {
	msg := "tcpls: session dead: recovery exhausted"
	if e.Attempts > 0 {
		msg = fmt.Sprintf("%s after %d reconnect attempts", msg, e.Attempts)
	}
	if e.LastErr != nil {
		msg = fmt.Sprintf("%s: %v", msg, e.LastErr)
	}
	return msg
}

func (e *SessionDeadError) Unwrap() []error {
	errs := []error{ErrSessionDead}
	if e.LastErr != nil {
		errs = append(errs, e.LastErr)
	}
	return errs
}

// SessionEventKind classifies session lifecycle events.
type SessionEventKind int

const (
	// EventConnDown: a TCP connection was declared failed (RST, timeout,
	// or peer notice). Failover/recovery may follow.
	EventConnDown SessionEventKind = iota + 1
	// EventFailover: parked streams were resynchronized onto the live
	// connection in Conn.
	EventFailover
	// EventReconnecting: all paths are down; redial round Attempt starts.
	EventReconnecting
	// EventReconnected: recovery succeeded; Conn is the revived path.
	EventReconnected
	// EventRecoveryFailed: the recovery budget is exhausted; the session
	// is dead and blocked calls return Err.
	EventRecoveryFailed
)

func (k SessionEventKind) String() string {
	switch k {
	case EventConnDown:
		return "conn_down"
	case EventFailover:
		return "failover"
	case EventReconnecting:
		return "reconnecting"
	case EventReconnected:
		return "reconnected"
	case EventRecoveryFailed:
		return "recovery_failed"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// SessionEvent is one lifecycle occurrence, observable by polling
// Events, blocking in WaitEvent, or via the Config.OnEvent callback.
type SessionEvent struct {
	Kind    SessionEventKind
	Conn    uint32 // affected or revived connection, where meaningful
	Attempt int    // redial round, for reconnect events
	Err     error  // terminal error, for EventRecoveryFailed
	Time    time.Time
}

// sessionEventCap bounds the polling queue; old events drop first — the
// recent tail is what a late reader needs.
const sessionEventCap = 128

func (s *Session) emitSessionEventLocked(ev SessionEvent) {
	ev.Time = time.Now()
	if len(s.sessEvents) >= sessionEventCap {
		s.sessEvents = s.sessEvents[1:]
	}
	s.sessEvents = append(s.sessEvents, ev)
	if s.eventCh != nil {
		select {
		case s.eventCh <- ev:
		default: // callback consumer hopelessly behind; keep the session alive
		}
	}
	s.cond.Broadcast()
}

// Events drains queued session lifecycle events without blocking.
func (s *Session) Events() []SessionEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	evs := s.sessEvents
	s.sessEvents = nil
	return evs
}

// WaitEvent blocks until a lifecycle event is available, the context is
// done, or the session closes with no events left.
func (s *Session) WaitEvent(ctx context.Context) (SessionEvent, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.sessEvents) == 0 {
		if s.closed {
			return SessionEvent{}, s.closedErrLocked()
		}
		if err := s.waitLocked(ctx); err != nil {
			return SessionEvent{}, err
		}
	}
	ev := s.sessEvents[0]
	s.sessEvents = s.sessEvents[1:]
	return ev, nil
}

// eventLoop feeds Config.OnEvent on its own goroutine so a slow callback
// never blocks the protocol path.
func (s *Session) eventLoop() {
	defer s.wg.Done()
	for {
		select {
		case ev := <-s.eventCh:
			s.cfg.OnEvent(ev)
		case <-s.timerStop:
			for {
				select {
				case ev := <-s.eventCh:
					s.cfg.OnEvent(ev)
				default:
					return
				}
			}
		}
	}
}

// closedErrLocked is the error a blocked call reports on a closed
// session: the terminal cause when there is one, else the generic close.
func (s *Session) closedErrLocked() error {
	if s.closeErr != nil {
		return s.closeErr
	}
	return ErrSessionClosed
}

// rememberAddrLocked records a peer address for the recovery supervisor.
// Addresses that cannot be re-dialed (net.Pipe and friends) are ignored.
func (s *Session) rememberAddrLocked(addr string) {
	if _, _, err := net.SplitHostPort(addr); err != nil {
		return
	}
	for _, a := range s.remoteAddrs {
		if a == addr {
			return
		}
	}
	s.remoteAddrs = append(s.remoteAddrs, addr)
}

// candidateAddrsLocked lists redial targets in preference order: every
// address this session actually dialed, then ADD_ADDR-advertised
// addresses (which carry only an IP — they get the port of the first
// dialed address). Duplicates collapse.
func (s *Session) candidateAddrsLocked() []string {
	seen := make(map[string]bool, len(s.remoteAddrs))
	var out []string
	add := func(a string) {
		if a != "" && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, a := range s.remoteAddrs {
		add(a)
	}
	var port string
	if len(s.remoteAddrs) > 0 {
		if _, p, err := net.SplitHostPort(s.remoteAddrs[0]); err == nil {
			port = p
		}
	}
	for _, a := range s.peerAddrs {
		ta, ok := a.(*net.TCPAddr)
		if !ok {
			continue
		}
		switch {
		case ta.Port != 0:
			add(ta.String())
		case port != "" && len(ta.IP) > 0:
			add(net.JoinHostPort(ta.IP.String(), port))
		}
	}
	return out
}

// maybeEnterRecoveryLocked resolves a session that has lost every path.
// If the peer closed every connection gracefully, the loss is an orderly
// goodbye and the session closes cleanly. Otherwise, with failover
// enabled the recovery supervisor arms (idempotent; no-op while one
// runs); without it there is nothing to recover with and the session
// dies immediately rather than parking blocked callers forever.
func (s *Session) maybeEnterRecoveryLocked() {
	if s.closed || s.recovering {
		return
	}
	if len(s.engine.Connections()) > 0 {
		return
	}
	graceful := len(s.conns) > 0
	for _, pc := range s.conns {
		if !pc.peerClosed {
			graceful = false
			break
		}
	}
	if graceful {
		s.failSessionLocked(nil)
		return
	}
	if !s.cfg.EnableFailover || s.cfg.DisableTCPLS {
		err := &SessionDeadError{LastErr: errNoFailover}
		s.engine.Note("recovery_failed", 0, 0, 0, 0)
		if s.tel != nil {
			s.tel.RecoveryFailures.Inc()
		}
		s.emitSessionEventLocked(SessionEvent{Kind: EventRecoveryFailed, Err: err})
		s.failSessionLocked(err)
		return
	}
	s.recovering = true
	rc := s.cfg.Reconnect.withDefaults()
	s.wg.Add(1)
	go s.recoveryLoop(rc)
}

// errNoFailover explains an immediate death on total path loss.
var errNoFailover = errors.New("tcpls: all connections failed and failover is disabled")

// recoveryLoop is the supervisor body: redial rounds with backoff on the
// client, a grace wait for the peer's rejoin otherwise, and a terminal
// declareDead when the budget runs out. It also notices paths revived by
// other means (manual JoinPath, server-side adoption) and stands down.
func (s *Session) recoveryLoop(rc ReconnectConfig) {
	defer s.wg.Done()
	deadline := time.Now().Add(rc.Deadline)
	canRedial := s.isClient && !rc.Disabled
	attempt := 0
	var lastErr error
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		if live := s.engine.Connections(); len(live) > 0 {
			// A path came back behind our back (JoinPath, peer rejoin).
			s.finishRecoveryLocked(live[0], attempt)
			s.mu.Unlock()
			s.flushAndWrite()
			return
		}
		redialNow := canRedial && len(s.cookies) > 0 &&
			attempt < rc.MaxAttempts && time.Now().Before(deadline)
		var addrs []string
		if redialNow {
			attempt++
			addrs = s.candidateAddrsLocked()
			s.engine.Note("reconnect_attempt", 0, 0, uint64(attempt), len(addrs))
			if s.tel != nil {
				s.tel.ReconnectAttempts.Inc()
			}
			s.emitSessionEventLocked(SessionEvent{Kind: EventReconnecting, Attempt: attempt})
		}
		s.mu.Unlock()

		if redialNow {
			if len(addrs) == 0 {
				// Nothing to dial, ever: downgrade to the grace wait.
				lastErr = errors.New("tcpls: no remembered peer addresses")
				canRedial = false
			}
			for _, addr := range addrs {
				id, err := s.redial(addr, deadline)
				if err == nil {
					s.mu.Lock()
					s.engine.Note("reconnect_ok", id, 0, uint64(attempt), 0)
					s.finishRecoveryLocked(id, attempt)
					s.mu.Unlock()
					s.flushAndWrite()
					return
				}
				lastErr = err
				if errors.Is(err, ErrSessionClosed) {
					return
				}
			}
		}

		if !time.Now().Before(deadline) ||
			(canRedial && attempt >= rc.MaxAttempts) {
			s.declareDead(attempt, lastErr)
			return
		}

		var pause time.Duration
		if redialNow || canRedial {
			pause = reconnectDelay(rc, attempt+1)
		}
		if pause < 10*time.Millisecond {
			// Grace-wait poll, and a floor between redial rounds.
			pause = 10 * time.Millisecond
		}
		if rem := time.Until(deadline); pause > rem {
			pause = rem + time.Millisecond
		}
		select {
		case <-time.After(pause):
		case <-s.timerStop:
			return
		}
	}
}

// finishRecoveryLocked stands the supervisor down on a revived path:
// parked streams resynchronize onto target via failover replay.
func (s *Session) finishRecoveryLocked(target uint32, attempt int) {
	s.recovering = false
	if s.tel != nil {
		s.tel.Reconnects.Inc()
	}
	s.resumeParkedLocked(target)
	s.emitSessionEventLocked(SessionEvent{Kind: EventReconnected, Conn: target, Attempt: attempt})
}

// resumeParkedLocked fails every parked (failed-with-streams) connection
// over onto target. An individual failure is not fatal here: if target
// just died too, its own failure event re-arms recovery.
func (s *Session) resumeParkedLocked(target uint32) {
	for _, failedID := range s.engine.FailedConnsWithStreams() {
		if failedID == target {
			continue
		}
		if err := s.engine.FailoverTo(failedID, target); err != nil {
			s.engine.Note("failover_error", failedID, 0, 0, 0)
			continue
		}
		if s.failoverTargets == nil {
			s.failoverTargets = make(map[uint32]bool)
		}
		s.failoverTargets[target] = true
		if pc, ok := s.conns[failedID]; ok {
			pc.nc.Close()
		}
		s.emitSessionEventLocked(SessionEvent{Kind: EventFailover, Conn: target})
	}
}

// declareDead ends recovery: terminal event, then the session fails with
// a *SessionDeadError so blocked Read/Write surface ErrSessionDead.
func (s *Session) declareDead(attempts int, lastErr error) {
	err := &SessionDeadError{Attempts: attempts, LastErr: lastErr}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.recovering = false
	s.engine.Note("recovery_failed", 0, 0, uint64(attempts), 0)
	if s.tel != nil {
		s.tel.RecoveryFailures.Inc()
	}
	s.emitSessionEventLocked(SessionEvent{Kind: EventRecoveryFailed, Attempt: attempts, Err: err})
	s.mu.Unlock()
	s.failSession(err)
}

// redial re-establishes one TCP connection through the join path, like
// JoinPath but outage-hardened: dial and handshake are bounded by the
// recovery deadline, and a cookie burned on a connection that never
// reached the server goes back to the pool.
func (s *Session) redial(addr string, deadline time.Time) (uint32, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrSessionClosed
	}
	if len(s.cookies) == 0 {
		s.mu.Unlock()
		return 0, ErrNoCookies
	}
	cookie := s.cookies[0]
	s.cookies = s.cookies[1:]
	connID := s.nextConnID
	s.nextConnID++
	s.engine.Note("cookie_consumed", connID, 0, 0, len(s.cookies))
	sessID := s.sessID
	sname := s.cfg.ServerName
	suites := s.cfg.Suites
	network := s.dialNetwork
	s.mu.Unlock()
	if network == "" {
		network = "tcp"
	}
	returnCookie := func() {
		s.mu.Lock()
		s.cookies = append([]Cookie{cookie}, s.cookies...)
		s.mu.Unlock()
	}

	timeout := 2 * time.Second
	if rem := time.Until(deadline); rem < timeout {
		timeout = rem
	}
	if timeout <= 0 {
		returnCookie()
		return 0, fmt.Errorf("tcpls: reconnect deadline exceeded")
	}
	nc, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		returnCookie()
		return 0, fmt.Errorf("tcpls: reconnect dial %s: %w", addr, err)
	}
	nc.SetDeadline(time.Now().Add(timeout))
	hcfg := &handshake.Config{
		Suites:     suites,
		ServerName: sname,
		Join:       &handshake.JoinTicket{SessID: sessID, Cookie: cookie, ConnID: connID},
	}
	tr := handshake.NewTransport(nc)
	if _, err := handshake.Client(tr, hcfg); err != nil {
		// The ClientHello reached the server, so the single-use cookie
		// must be assumed spent; do not return it.
		nc.Close()
		return 0, fmt.Errorf("tcpls: reconnect handshake %s: %w", addr, err)
	}
	nc.SetDeadline(time.Time{})

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return 0, ErrSessionClosed
	}
	if err := s.engine.AddConnection(connID, time.Now()); err != nil {
		s.mu.Unlock()
		nc.Close()
		return 0, err
	}
	s.addConnLocked(connID, nc)
	s.engine.Note("join_accepted", connID, 0, 0, 0)
	s.rememberAddrLocked(addr)
	var pending []outChunk
	if leftover := tr.Leftover(); len(leftover) > 0 {
		s.engine.Receive(connID, leftover, time.Now())
		s.processEventsLocked()
		pending = s.collectOutgoingLocked()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.writeAll(pending)
	return connID, nil
}
