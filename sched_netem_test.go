// Scheduler integration tests over emulated asymmetric paths: a coupled
// download spread across two netem-shaped relays, with the server-side
// record scheduler selected by Config.Scheduler. Shared with the
// BenchmarkPathSchedulers ablation in bench_test.go.
package tcpls_test

import (
	"context"
	"net"
	"testing"
	"time"

	"tcpls"
	"tcpls/internal/netem"
)

// smallBufListener caps the send buffer of accepted connections so the
// sender feels TCP backpressure after tens of KB instead of after the
// kernel autotunes megabytes of slack. Without it the whole transfer is
// scheduled into socket buffers before the first ACK-derived metric
// arrives, and every scheduler degenerates to its cold-start split.
type smallBufListener struct {
	net.Listener
}

func (l smallBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetWriteBuffer(16 << 10)
		}
	}
	return c, err
}

// schedTransfer downloads total bytes over two netem paths (the initial
// connection through pathA, a joined connection through pathB) with the
// named scheduler driving the server's coupled-record placement, and
// returns the receiver-measured goodput in bits per second.
//
// Failover-mode record acknowledgments are enabled on both sides so the
// path-metrics engine sees RTT and delivery-rate samples; small records,
// a short ACK period, shallow relay queues, and capped socket buffers
// keep the feedback loop tight enough that a metrics-driven scheduler
// can act on what it learns mid-transfer. The client confirms delivery
// on a dedicated (uncoupled) stream before the server closes, so no
// shaped bytes are still in flight when the session tears down.
func schedTransfer(tb testing.TB, scheduler string, total int, pathA, pathB netem.Profile) float64 {
	tb.Helper()
	cert, err := tcpls.NewCertificate("sched.test")
	if err != nil {
		tb.Fatal(err)
	}
	rawLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	ln := tcpls.NewListener(smallBufListener{rawLn}, &tcpls.Config{
		Certificate:      cert,
		EnableFailover:   true,
		AckPeriod:        2,
		MaxRecordPayload: 2048,
		Scheduler:        scheduler,
	})
	defer ln.Close()

	go func() {
		sess, err := ln.Accept()
		if err != nil {
			return
		}
		defer sess.Close()
		// Wait for both coupled streams before sending so every record
		// has the full path choice.
		for i := 0; i < 2; i++ {
			st, err := sess.AcceptStream(context.Background())
			if err != nil {
				return
			}
			one := make([]byte, 1)
			if _, err := st.Read(one); err != nil {
				return
			}
			if err := sess.Couple(st); err != nil {
				return
			}
		}
		chunk := make([]byte, 8<<10)
		for sent := 0; sent < total; {
			n := min(len(chunk), total-sent)
			if _, err := sess.WriteCoupled(chunk[:n]); err != nil {
				return
			}
			sent += n
		}
		// Hold the session open until the client confirms delivery on
		// its uncoupled signal stream.
		done, err := sess.AcceptStream(context.Background())
		if err != nil {
			return
		}
		done.Read(make([]byte, 1))
	}()

	mk := func(p netem.Profile) *netem.Relay {
		r, err := netem.NewRelay(rawLn.Addr().String(), p, p)
		if err != nil {
			tb.Fatal(err)
		}
		return r
	}
	relayA, relayB := mk(pathA), mk(pathB)
	defer relayA.Close()
	defer relayB.Close()

	sess, err := tcpls.Dial("tcp", relayA.Addr(), &tcpls.Config{
		ServerName:     "sched.test",
		EnableFailover: true,
		AckPeriod:      2,
	})
	if err != nil {
		tb.Fatal(err)
	}
	defer sess.Close()

	st1, err := sess.OpenStream()
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := st1.Write([]byte("A")); err != nil {
		tb.Fatal(err)
	}
	conn2, err := sess.JoinPath("tcp", relayB.Addr())
	if err != nil {
		tb.Fatal(err)
	}
	st2, err := sess.OpenStreamOn(conn2)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := st2.Write([]byte("B")); err != nil {
		tb.Fatal(err)
	}

	start := time.Now()
	buf := make([]byte, 64<<10)
	received := 0
	for received < total {
		n, err := sess.ReadCoupled(buf)
		if err != nil {
			tb.Fatal(err)
		}
		received += n
	}
	elapsed := time.Since(start)
	if done, err := sess.OpenStream(); err == nil {
		done.Write([]byte("K")) // release the server
	}
	return float64(received) * 8 / elapsed.Seconds()
}

// shallowQueue returns p with a two-chunk bottleneck queue, the shallow
// buffering the scheduler tests need for prompt backpressure.
func shallowQueue(p netem.Profile) netem.Profile {
	p.QueueLen = 2
	return p
}

// TestWeightedRateBeatsRoundRobinOnAsymmetricPaths is the acceptance
// check for the rate-weighted scheduler: over a 20 Mbps + 2 Mbps pair,
// round-robin is pinned to twice the slow path's rate (each record
// alternates, in-order delivery waits for the slow half), while the
// rate scheduler learns the asymmetry from ACK-derived delivery rates
// and shifts records to the fast path mid-transfer.
func TestWeightedRateBeatsRoundRobinOnAsymmetricPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second netem transfer")
	}
	const total = 2 << 20
	fast := shallowQueue(netem.Profile{RateBps: 20_000_000, Delay: 5 * time.Millisecond})
	slow := shallowQueue(netem.Profile{RateBps: 2_000_000, Delay: 5 * time.Millisecond})

	rr := schedTransfer(t, "roundrobin", total, fast, slow)
	wr := schedTransfer(t, "rate", total, fast, slow)
	t.Logf("goodput: roundrobin %.1f Mbps, weightedrate %.1f Mbps", rr/1e6, wr/1e6)
	if wr <= rr {
		t.Fatalf("weightedrate goodput %.1f Mbps not above roundrobin %.1f Mbps", wr/1e6, rr/1e6)
	}
}

// TestRedundantSchedulerOverNetem exercises the duplicate-everywhere
// policy end to end: the receiver must dedupe the per-path copies via
// the aggregation-sequence reorder buffer and deliver exactly total
// bytes.
func TestRedundantSchedulerOverNetem(t *testing.T) {
	if testing.Short() {
		t.Skip("netem transfer")
	}
	const total = 256 << 10
	p := netem.Profile{RateBps: 40_000_000, Delay: 2 * time.Millisecond}
	bps := schedTransfer(t, "redundant", total, p, p)
	if bps <= 0 {
		t.Fatal("no goodput")
	}
}
