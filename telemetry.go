package tcpls

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tcpls/internal/core"
	"tcpls/internal/telemetry"
)

// TelemetryConfig is the Config.Telemetry knob: production observability
// for a session. The zero value keeps the lock-free metrics registry on
// (a handful of atomic increments per record) without serving anything;
// Addr additionally exposes /metrics and /debug/pprof; Disabled turns
// the whole layer into a nil-check on the hot path.
type TelemetryConfig struct {
	// Disabled switches metric collection off entirely. The engine's
	// emission points reduce to one nil-check each and Session.Metrics
	// returns only the basic engine Stats.
	Disabled bool
	// Addr, when non-empty, serves the shared metrics registry over
	// HTTP at this address: Prometheus text format on /metrics and the
	// pprof surface (goroutine, heap, profile, trace) under
	// /debug/pprof/. Sessions and listeners sharing an Addr share one
	// server; it stops when the last holder closes.
	Addr string
	// Sample thins the qlog trace sink: only one in Sample events is
	// written (0 and 1 keep every event). Metrics are never sampled.
	Sample int
	// FlatTrace keeps TraceJSON on the legacy flat JSON schema (one
	// object per line, no qlog header) instead of qlog framing.
	FlatTrace bool
	// FlightCapacity sizes the always-on flight recorder ring (events
	// held, ~112 bytes each). 0 means the default 8192 (~1 MiB);
	// negative disables the recorder.
	FlightCapacity int
	// FlightDump, when set, receives an automatic flight-recorder dump
	// when the session dies with an error (SessionDeadError, protocol
	// failure) — the postmortem trace. The write happens on its own
	// goroutine; the writer must be safe for one concurrent use.
	FlightDump io.Writer
}

// Stats re-exports the engine's raw counter block (see Session.Stats).
type Stats = core.Stats

// MetricsSnapshot is a point-in-time copy of a session's aggregated
// telemetry, returned by Session.Metrics. Counters are cumulative since
// the session started; gauges are instantaneous.
type MetricsSnapshot struct {
	// Stats is the engine's raw counter block (records, bytes, acks,
	// retransmits), always populated even with telemetry disabled.
	Stats Stats

	// Recovery and failover counters (tcpls_* families on /metrics).
	ConnFailures      uint64
	Failovers         uint64
	FailoverCascades  uint64
	ReconnectAttempts uint64
	Reconnects        uint64
	RecoveryFailures  uint64

	// SchedPicks counts coupled records routed per scheduler policy.
	SchedPicks   map[string]uint64
	SchedInvalid uint64

	// Trace sink health: events enqueued and events lost to a full ring.
	TraceEvents  uint64
	TraceDropped uint64

	// Flow-control counters: configured memory bounds tripped and ACK
	// solicitations sent under retransmit-budget pressure.
	FlowctlLimits uint64
	AckSolicits   uint64

	// AckRTT summarizes the record-level acknowledgment RTT histogram.
	AckRTTSamples uint64
	AckRTTMean    time.Duration

	// Instantaneous gauges. The byte gauges and their session peaks come
	// straight from the engine, so they are populated even with
	// Telemetry.Disabled — the chaos tests assert memory bounds through
	// them.
	ReorderHeapDepth    int
	ReorderBytes        int
	ReorderBytesPeak    int
	RetransmitBytes     int
	RetransmitBytesPeak int
	ConnsOpen           int
	StreamsOpen         int

	// Conns breaks the record counters down per connection (per path) —
	// the totals tcpls-trace reconciles a flight dump against.
	Conns map[uint32]ConnMetricsSnapshot

	// Flight recorder health: events currently held and ever appended.
	FlightEvents int
	FlightTotal  uint64
}

// ConnMetricsSnapshot is one connection's counter block inside a
// MetricsSnapshot.
type ConnMetricsSnapshot struct {
	RecordsSent     uint64
	RecordsReceived uint64
	BytesSent       uint64
	BytesReceived   uint64
	Retransmits     uint64
	AcksSent        uint64
	AcksReceived    uint64
	DupRecords      uint64
	FailedDecrypts  uint64
}

// Metrics returns a snapshot of the session's telemetry. With
// Telemetry.Disabled only the Stats block is populated.
func (s *Session) Metrics() MetricsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := MetricsSnapshot{Stats: s.engine.Stats()}
	snap.ReorderBytes = s.engine.ReorderBytes()
	snap.ReorderBytesPeak = s.engine.ReorderPeakBytes()
	snap.RetransmitBytes = s.engine.RetransmitBytes()
	snap.RetransmitBytesPeak = s.engine.RetransmitPeakBytes()
	if f := s.flight; f != nil {
		snap.FlightEvents = f.Len()
		snap.FlightTotal = f.Total()
	}
	tel := s.tel
	if tel == nil {
		snap.ReorderHeapDepth = s.engine.ReorderDepth()
		return snap
	}
	snap.ConnFailures = tel.ConnFailures.Load()
	snap.Failovers = tel.Failovers.Load()
	snap.FailoverCascades = tel.FailoverCascades.Load()
	snap.ReconnectAttempts = tel.ReconnectAttempts.Load()
	snap.Reconnects = tel.Reconnects.Load()
	snap.RecoveryFailures = tel.RecoveryFailures.Load()
	snap.SchedPicks = tel.PickCounts()
	snap.SchedInvalid = tel.SchedInvalid.Load()
	snap.TraceEvents = tel.TraceEvents.Load()
	snap.TraceDropped = tel.TraceDropped.Load()
	snap.FlowctlLimits = tel.FlowctlLimits.Load()
	snap.AckSolicits = tel.AckSolicits.Load()
	snap.AckRTTSamples = tel.AckRTT.Count()
	snap.AckRTTMean = time.Duration(tel.AckRTT.Mean() * float64(time.Second))
	snap.ReorderHeapDepth = int(tel.ReorderDepth.Load())
	snap.ConnsOpen = int(tel.ConnsOpen.Load())
	snap.StreamsOpen = int(tel.StreamsOpen.Load())
	ids := tel.ConnIDs()
	snap.Conns = make(map[uint32]ConnMetricsSnapshot, len(ids))
	for _, id := range ids {
		cm := tel.Conn(id)
		snap.Conns[id] = ConnMetricsSnapshot{
			RecordsSent:     cm.RecordsSent.Load(),
			RecordsReceived: cm.RecordsReceived.Load(),
			BytesSent:       cm.BytesSent.Load(),
			BytesReceived:   cm.BytesReceived.Load(),
			Retransmits:     cm.Retransmits.Load(),
			AcksSent:        cm.AcksSent.Load(),
			AcksReceived:    cm.AcksReceived.Load(),
			DupRecords:      cm.DupRecords.Load(),
			FailedDecrypts:  cm.FailedDecrypts.Load(),
		}
	}
	return snap
}

// MetricsHandler returns an http.Handler serving the process-wide
// metrics registry in Prometheus text format, for applications that
// already run an HTTP server and want /metrics on their own mux.
func MetricsHandler() http.Handler {
	return telemetry.Handler(telemetry.Default())
}

// ServeTelemetry starts the shared telemetry server on addr (the same
// endpoint Config.Telemetry.Addr provides per session) and returns a
// handle that keeps it alive until closed. Commands use this to hold
// the endpoint open for the whole process lifetime regardless of
// session churn.
func ServeTelemetry(addr string) (io.Closer, error) {
	if err := acquireTelemetryServer(addr); err != nil {
		return nil, err
	}
	return telemetryRef(addr), nil
}

// telemetryRef is one reference on a shared telemetry server.
type telemetryRef string

func (r telemetryRef) Close() error {
	releaseTelemetryServer(string(r))
	return nil
}

// Shared telemetry servers, refcounted by listen address: every session
// and listener configured with the same Telemetry.Addr holds one
// reference; the HTTP server stops when the last reference drops (so
// tests with ephemeral sessions leak nothing).
var (
	telServersMu sync.Mutex
	telServers   = make(map[string]*sharedTelemetryServer)
)

type sharedTelemetryServer struct {
	srv  *telemetry.Server
	refs int
}

func acquireTelemetryServer(addr string) error {
	telServersMu.Lock()
	defer telServersMu.Unlock()
	if ts, ok := telServers[addr]; ok {
		ts.refs++
		return nil
	}
	srv, err := telemetry.Serve(addr, telemetry.Default())
	if err != nil {
		return fmt.Errorf("tcpls: telemetry listen %s: %w", addr, err)
	}
	telServers[addr] = &sharedTelemetryServer{srv: srv, refs: 1}
	return nil
}

func releaseTelemetryServer(addr string) {
	telServersMu.Lock()
	defer telServersMu.Unlock()
	ts, ok := telServers[addr]
	if !ok {
		return
	}
	if ts.refs--; ts.refs <= 0 {
		ts.srv.Close()
		delete(telServers, addr)
	}
}

// sessLabel renders the sess metric label: the first four SessID bytes,
// enough to tell sessions apart on a dashboard without exploding
// cardinality.
func sessLabel(id SessID) string {
	return fmt.Sprintf("%x", id[:4])
}

// debugSeq disambiguates /debug/tcpls keys: the client and server ends
// of one TCPLS session share a sessLabel, and labels can recur across a
// process lifetime.
var debugSeq atomic.Uint64

// initTelemetry wires the session's metric handles (shared process-wide
// registry, labelled per session), starts the always-on flight recorder,
// registers the /debug/tcpls state provider, and acquires the HTTP
// endpoint if one is configured. Called from newSession before the
// engine sees traffic (no lock needed yet).
func (s *Session) initTelemetry() {
	if s.cfg.Telemetry.Disabled {
		return
	}
	fams := telemetry.TCPLSFamilies(telemetry.Default())
	s.tel = fams.Session(sessLabel(s.sessID))
	s.engine.SetTelemetry(s.tel)
	if s.cfg.Telemetry.FlightCapacity >= 0 {
		s.flight = telemetry.NewFlight(s.cfg.Telemetry.FlightCapacity)
		// Record-lifecycle spans need the socket-write leg; the wrapper's
		// writer goroutines report it via NoteWritten/NoteWriteDropped.
		s.engine.SetWriteStamping(true)
		s.refreshTracerLocked()
	}
	role := "server"
	if s.isClient {
		role = "client"
	}
	s.debugKey = fmt.Sprintf("%s-%s-%d", sessLabel(s.sessID), role, debugSeq.Add(1))
	telemetry.RegisterDebug(s.debugKey, s.debugState)
	if addr := s.cfg.Telemetry.Addr; addr != "" {
		if err := acquireTelemetryServer(addr); err == nil {
			s.telAddr = addr
		}
	}
	s.initHealth()
}

// closeTelemetryLocked releases the session's trace sink, debug
// registration, and HTTP endpoint reference. Idempotent; called from
// every teardown path. The flight recorder stays readable after close —
// DumpFlight on a dead session is the whole point.
func (s *Session) closeTelemetryLocked() {
	s.closeHealthLocked()
	if sink := s.traceSink; sink != nil {
		s.traceSink = nil
		// Close flushes; do it off the lock path budget — the sink's
		// Close is bounded regardless.
		go sink.Close()
	}
	if s.debugKey != "" {
		telemetry.UnregisterDebug(s.debugKey)
		s.debugKey = ""
	}
	if s.telAddr != "" {
		releaseTelemetryServer(s.telAddr)
		s.telAddr = ""
	}
}
