//go:build !linux

package tcpls

import "net"

// fillKernelInfo is a no-op where TCP_INFO is unavailable: the TCPLS-
// level fields (addresses, engine statistics, Ping-based RTT) remain.
func fillKernelInfo(nc net.Conn, info *ConnInfo) {}
