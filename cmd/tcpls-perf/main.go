// Command tcpls-perf measures TCPLS bulk throughput over real TCP, the
// measurement application of the paper's §5.1 (memory-to-memory transfer
// over a TCPLS session).
//
// Server:  tcpls-perf -server -listen :4443
// Client:  tcpls-perf -connect host:4443 [-bytes 1073741824] [-streams 1]
//
//	[-failover] [-record 16368] [-plain-tls]
//
// The client opens the requested number of streams, pushes -bytes of
// data, and reports goodput. With -failover, record-level
// acknowledgments are enabled (the paper's Failover cost measurement).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"tcpls"
)

var (
	serverFlag  = flag.Bool("server", false, "run as server")
	listenFlag  = flag.String("listen", ":4443", "server listen address")
	connectFlag = flag.String("connect", "", "server address to connect to")
	bytesFlag   = flag.Int64("bytes", 1<<30, "bytes to transfer")
	streamsFlag = flag.Int("streams", 1, "parallel streams")
	failoverF   = flag.Bool("failover", false, "enable failover (record acks)")
	recordFlag  = flag.Int("record", 0, "max record payload bytes (0 = default 16368)")
	plainFlag   = flag.Bool("plain-tls", false, "disable TCPLS (plain TLS baseline)")
	nameFlag    = flag.String("name", "perf.tcpls", "server certificate name")
	metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address")

	resumeFlag = flag.Bool("resume", false, "benchmark session establishment: full vs resumed vs 0-RTT, join vs fast join")
	itersFlag  = flag.Int("iters", 25, "with -resume: loopback iterations per flow")
	outFlag    = flag.String("out", "BENCH_resume.json", "with -resume: result file")

	smokeFlag  = flag.Bool("resume-smoke", false, "resume smoke probe: save a ticket on first run, resume with 0-RTT on the next (see -ticket-file)")
	ticketFile = flag.String("ticket-file", "ticket.json", "with -resume-smoke: where the resumption ticket is stored")

	cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the transfer to this file (client side)")
	allocStats = flag.Bool("allocstats", false, "report heap allocations across the transfer (datapath pool check: steady state should be ~0 allocs/MB)")
)

func main() {
	flag.Parse()
	if *resumeFlag {
		runResume(*itersFlag, *outFlag)
		return
	}
	if *smokeFlag {
		if *connectFlag == "" {
			fmt.Fprintln(os.Stderr, "-resume-smoke needs -connect")
			os.Exit(2)
		}
		runResumeSmoke(*connectFlag, *nameFlag, *ticketFile)
		return
	}
	cfg := &tcpls.Config{
		EnableFailover:   *failoverF,
		MaxRecordPayload: *recordFlag,
		DisableTCPLS:     *plainFlag,
		ServerName:       *nameFlag,
	}
	if *metricsAddr != "" {
		cfg.Telemetry.Addr = *metricsAddr
		// Hold the endpoint for the process lifetime regardless of
		// session churn.
		closer, err := tcpls.ServeTelemetry(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer closer.Close()
		log.Printf("telemetry on http://%s/metrics", *metricsAddr)
	}
	if *serverFlag {
		runServer(cfg)
		return
	}
	if *connectFlag == "" {
		fmt.Fprintln(os.Stderr, "need -server or -connect")
		os.Exit(2)
	}
	runClient(cfg)
}

func runServer(cfg *tcpls.Config) {
	cert, err := tcpls.NewCertificate(*nameFlag)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Certificate = cert
	ln, err := tcpls.Listen("tcp", *listenFlag, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("tcpls-perf server on %s (failover=%v plain=%v)", ln.Addr(), cfg.EnableFailover, cfg.DisableTCPLS)
	for {
		sess, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			defer sess.Close()
			for {
				st, err := sess.AcceptStream(context.Background())
				if err != nil {
					return
				}
				go func() {
					// Sink: count and discard.
					n, _ := io.Copy(io.Discard, st)
					log.Printf("stream %d: received %d bytes", st.ID(), n)
				}()
			}
		}()
	}
}

func runClient(cfg *tcpls.Config) {
	sess, err := tcpls.Dial("tcp", *connectFlag, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	perStream := *bytesFlag / int64(*streamsFlag)
	chunk := make([]byte, 1<<20)
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	var memBefore runtime.MemStats
	if *allocStats {
		runtime.GC()
		runtime.ReadMemStats(&memBefore)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *streamsFlag; i++ {
		st, err := sess.OpenStream()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sent int64
			for sent < perStream {
				n := int64(len(chunk))
				if sent+n > perStream {
					n = perStream - sent
				}
				if _, err := st.Write(chunk[:n]); err != nil {
					log.Fatalf("write: %v", err)
				}
				sent += n
			}
			st.Close()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := perStream * int64(*streamsFlag)
	fmt.Printf("%d bytes in %v: %.2f Gbps (%d streams, failover=%v)\n",
		total, elapsed, float64(total)*8/elapsed.Seconds()/1e9, *streamsFlag, cfg.EnableFailover)
	stats := sess.Stats()
	fmt.Printf("records sent=%d acks received=%d retransmits=%d\n",
		stats.RecordsSent, stats.AcksReceived, stats.Retransmits)
	if *allocStats {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		mallocs := memAfter.Mallocs - memBefore.Mallocs
		heap := memAfter.TotalAlloc - memBefore.TotalAlloc
		fmt.Printf("allocs=%d (%.1f/MB transferred) heap=%d B gcs=%d\n",
			mallocs, float64(mallocs)/(float64(total)/(1<<20)),
			heap, memAfter.NumGC-memBefore.NumGC)
	}
}
