// The -resume mode benchmarks session establishment rather than bulk
// throughput: full handshake vs ticket resumption vs 0-RTT early data,
// and two-flight joins vs single-flight fast joins. Two measurements
// per flow:
//
//   - An exact round-trip count from a deterministic replay of each
//     handshake over an instrumented in-memory duplex that counts wire
//     direction switches (half round trips), plus one RTT for the TCP
//     connect. This is load-independent: it is the protocol's shape.
//   - Wall-clock time-to-first-echoed-byte over real loopback TCP,
//     reported as p10/p50/p90 over -iters runs.
//
// Results land in -out (default BENCH_resume.json). The tool exits
// nonzero if 0-RTT does not beat the full handshake by at least one
// round trip, or the fast join does not beat the two-flight join by at
// least one round trip — the regression gate for the resumption path.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"tcpls"
	"tcpls/internal/handshake"
)

// ---------------------------------------------------------------------
// Deterministic flight counting.

// meter counts wire direction switches across an in-memory duplex: one
// switch is half a round trip. Writes within one flight (same side)
// do not advance it.
type meter struct {
	mu    sync.Mutex
	trips int
	last  int
}

func (m *meter) note(side int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.last != side {
		m.trips++
		m.last = side
	}
	return m.trips
}

// byteQueue is one direction of the duplex: an unbounded buffered pipe,
// so optimistic first flights (0-RTT, fast joins) never deadlock the
// way net.Pipe's rendezvous semantics would.
type byteQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

func newByteQueue() *byteQueue {
	q := &byteQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *byteQueue) Write(p []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, io.ErrClosedPipe
	}
	q.buf = append(q.buf, p...)
	q.cond.Broadcast()
	return len(p), nil
}

func (q *byteQueue) Read(p []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, q.buf)
	q.buf = q.buf[n:]
	return n, nil
}

// meteredConn is one side of the duplex. writeTrips records the trip
// count observed at each Write, so a flow can pinpoint which flight
// carried its request bytes.
type meteredConn struct {
	side       int
	m          *meter
	in, out    *byteQueue
	writeTrips []int
}

func (c *meteredConn) Read(p []byte) (int, error) { return c.in.Read(p) }

func (c *meteredConn) Write(p []byte) (int, error) {
	c.writeTrips = append(c.writeTrips, c.m.note(c.side))
	return c.out.Write(p)
}

func duplexPair() (cli, srv *meteredConn) {
	m := &meter{}
	c2s, s2c := newByteQueue(), newByteQueue()
	cli = &meteredConn{side: 1, m: m, in: s2c, out: c2s}
	srv = &meteredConn{side: 2, m: m, in: c2s, out: s2c}
	return cli, srv
}

// tcpConnectTrips is the SYN / SYN-ACK cost in half round trips that
// every flow pays before its first TLS byte (the final ACK of the
// three-way handshake rides with the ClientHello).
const tcpConnectTrips = 2

// staticValidator accepts exactly one (session, cookie) pair — the
// replayed join flows' stand-in for the listener's cookie table.
type staticValidator struct {
	id     handshake.SessID
	cookie handshake.Cookie
}

func (v *staticValidator) ValidateJoin(id handshake.SessID, c handshake.Cookie) bool {
	return id == v.id && c == v.cookie
}

// flightResult is one flow's deterministic replay outcome.
type flightResult struct {
	// RTTs to the server first holding the request bytes, including
	// the TCP connect.
	RTT float64 `json:"rtt_to_first_server_byte"`
}

// runFlight replays one handshake flow over a fresh duplex. client runs
// on the caller's goroutine and returns the trip count of the write
// that carried the request; server runs concurrently.
func runFlight(server func(srv *meteredConn) error, client func(cli *meteredConn) (int, error)) (flightResult, error) {
	cli, srv := duplexPair()
	srvErr := make(chan error, 1)
	go func() { srvErr <- server(srv) }()
	reqTrips, err := client(cli)
	if err != nil {
		return flightResult{}, err
	}
	if err := <-srvErr; err != nil {
		return flightResult{}, err
	}
	return flightResult{RTT: float64(reqTrips+tcpConnectTrips) / 2}, nil
}

// measureFlights replays every establishment flow and returns the exact
// round-trip counts.
func measureFlights() (map[string]flightResult, error) {
	cert, err := handshake.NewCertificate("perf.tcpls")
	if err != nil {
		return nil, err
	}
	req := []byte("GET /early HTTP/1.0\r\n\r\n")
	psk := make([]byte, 32)
	for i := range psk {
		psk[i] = byte(i)
	}
	ticket := []byte("perf-resumption-ticket")
	decrypt := func(t []byte) ([]byte, bool) { return psk, string(t) == string(ticket) }

	out := map[string]flightResult{}

	// Full handshake: request rides the flight after the client's
	// Finished (2.5 RTT with the TCP connect).
	out["full"], err = runFlight(
		func(srv *meteredConn) error {
			_, err := handshake.Server(handshake.NewTransport(srv),
				&handshake.Config{Certificate: cert, TCPLSServer: true})
			return err
		},
		func(cli *meteredConn) (int, error) {
			if _, err := handshake.Client(handshake.NewTransport(cli),
				&handshake.Config{ServerName: "perf.tcpls", EnableTCPLS: true}); err != nil {
				return 0, err
			}
			cli.Write(req)
			return cli.writeTrips[len(cli.writeTrips)-1], nil
		})
	if err != nil {
		return nil, fmt.Errorf("full: %w", err)
	}

	// Ticket resumption without early data: same shape, lighter flights
	// (no certificate exchange) — the savings are bytes and CPU, not
	// round trips.
	out["resumed"], err = runFlight(
		func(srv *meteredConn) error {
			_, err := handshake.Server(handshake.NewTransport(srv),
				&handshake.Config{Certificate: cert, TCPLSServer: true, DecryptTicket: decrypt})
			return err
		},
		func(cli *meteredConn) (int, error) {
			res, err := handshake.Client(handshake.NewTransport(cli),
				&handshake.Config{ServerName: "perf.tcpls", EnableTCPLS: true, PSK: psk, PSKTicket: ticket})
			if err != nil {
				return 0, err
			}
			if !res.Resumed {
				return 0, fmt.Errorf("ticket not accepted")
			}
			cli.Write(req)
			return cli.writeTrips[len(cli.writeTrips)-1], nil
		})
	if err != nil {
		return nil, fmt.Errorf("resumed: %w", err)
	}

	// 0-RTT: the request rides the ClientHello flight. The trip index of
	// the first early-data record (the client's second write) is the
	// measured arrival flight.
	out["zero_rtt"], err = runFlight(
		func(srv *meteredConn) error {
			res, err := handshake.Server(handshake.NewTransport(srv),
				&handshake.Config{Certificate: cert, TCPLSServer: true, DecryptTicket: decrypt})
			if err != nil {
				return err
			}
			if !res.EarlyDataAccepted || string(res.EarlyData) != string(req) {
				return fmt.Errorf("early data not delivered in-handshake")
			}
			return nil
		},
		func(cli *meteredConn) (int, error) {
			res, err := handshake.Client(handshake.NewTransport(cli),
				&handshake.Config{ServerName: "perf.tcpls", EnableTCPLS: true,
					PSK: psk, PSKTicket: ticket, EarlyData: req})
			if err != nil {
				return 0, err
			}
			if !res.EarlyDataAccepted {
				return 0, fmt.Errorf("0-RTT rejected")
			}
			if len(cli.writeTrips) < 2 {
				return 0, fmt.Errorf("no early flight written")
			}
			return cli.writeTrips[1], nil
		})
	if err != nil {
		return nil, fmt.Errorf("zero_rtt: %w", err)
	}

	var sessID handshake.SessID
	var cookie handshake.Cookie
	for i := range sessID {
		sessID[i] = byte(0xa0 + i)
	}
	for i := range cookie {
		cookie[i] = byte(0x50 + i)
	}
	sessions := &staticValidator{id: sessID, cookie: cookie}
	join := &handshake.JoinTicket{SessID: sessID, Cookie: cookie, ConnID: 7}

	// Two-flight join: full handshake shape with the join extension; the
	// first stream record follows the client Finished.
	out["join"], err = runFlight(
		func(srv *meteredConn) error {
			_, err := handshake.Server(handshake.NewTransport(srv),
				&handshake.Config{Certificate: cert, TCPLSServer: true, Sessions: sessions})
			return err
		},
		func(cli *meteredConn) (int, error) {
			res, err := handshake.Client(handshake.NewTransport(cli),
				&handshake.Config{ServerName: "perf.tcpls", Join: join})
			if err != nil {
				return 0, err
			}
			if !res.JoinAccepted {
				return 0, fmt.Errorf("join rejected")
			}
			cli.Write(req)
			return cli.writeTrips[len(cli.writeTrips)-1], nil
		})
	if err != nil {
		return nil, fmt.Errorf("join: %w", err)
	}

	// Fast join: cookie, STREAM_ATTACH, and data all ride the first
	// flight (the engine's records follow the ClientHello directly).
	out["join_fast"], err = runFlight(
		func(srv *meteredConn) error {
			res, err := handshake.Server(handshake.NewTransport(srv),
				&handshake.Config{Certificate: cert, TCPLSServer: true, Sessions: sessions})
			if err != nil {
				return err
			}
			if !res.FastJoin {
				return fmt.Errorf("server did not take the fast path")
			}
			return nil
		},
		func(cli *meteredConn) (int, error) {
			tr := handshake.NewTransport(cli)
			if err := handshake.StartFastJoin(tr, &handshake.Config{Join: join}); err != nil {
				return 0, err
			}
			cli.Write(req) // the piggybacked engine records
			reqTrip := cli.writeTrips[len(cli.writeTrips)-1]
			if err := handshake.FinishFastJoin(tr); err != nil {
				return 0, err
			}
			return reqTrip, nil
		})
	if err != nil {
		return nil, fmt.Errorf("join_fast: %w", err)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Wall-clock loopback benchmark.

type quantiles struct {
	P10US int64 `json:"p10_us"`
	P50US int64 `json:"p50_us"`
	P90US int64 `json:"p90_us"`
}

func summarize(ds []time.Duration) quantiles {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	at := func(p int) int64 {
		idx := len(ds) * p / 100
		if idx >= len(ds) {
			idx = len(ds) - 1
		}
		return ds[idx].Microseconds()
	}
	return quantiles{P10US: at(10), P50US: at(50), P90US: at(90)}
}

// benchResume is the whole -resume run: flight counts plus loopback
// timings, serialized to -out.
type benchResume struct {
	GeneratedBy string                  `json:"generated_by"`
	Iters       int                     `json:"iters"`
	Note        string                  `json:"note"`
	Flights     map[string]flightResult `json:"flights"`
	LoopbackUS  map[string]quantiles    `json:"loopback_time_to_first_byte"`
}

func perfTicket(addr string, cfg *tcpls.Config) (*tcpls.ClientTicket, error) {
	sess, err := tcpls.Dial("tcp", addr, cfg)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if tk := sess.ResumptionTicket(); tk != nil {
			return tk, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil, fmt.Errorf("no resumption ticket within 5s")
}

func echoServe(ln *tcpls.Listener) {
	for {
		sess, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer sess.Close()
			for {
				st, err := sess.AcceptStream(context.Background())
				if err != nil {
					return
				}
				go io.Copy(st, st)
			}
		}()
	}
}

func runResume(iters int, outPath string) {
	flights, err := measureFlights()
	if err != nil {
		log.Fatalf("flight replay: %v", err)
	}

	cert, err := tcpls.NewCertificate("perf.tcpls")
	if err != nil {
		log.Fatal(err)
	}
	// Plain server for establishment flows; failover server for join
	// flows (the fast join needs failover's replay to stay lossless, and
	// the two-flight baseline should pay the same ack overhead).
	plainLn, err := tcpls.Listen("tcp", "127.0.0.1:0", &tcpls.Config{Certificate: cert})
	if err != nil {
		log.Fatal(err)
	}
	defer plainLn.Close()
	go echoServe(plainLn)
	foLn, err := tcpls.Listen("tcp", "127.0.0.1:0", &tcpls.Config{Certificate: cert, EnableFailover: true})
	if err != nil {
		log.Fatal(err)
	}
	defer foLn.Close()
	go echoServe(foLn)

	req := []byte("GET /early HTTP/1.0\r\n\r\n")
	buf := make([]byte, len(req))
	ccfg := func() *tcpls.Config { return &tcpls.Config{ServerName: "perf.tcpls"} }
	loop := map[string][]time.Duration{}
	record := func(name string, d time.Duration) { loop[name] = append(loop[name], d) }

	for i := 0; i < iters; i++ {
		// Full handshake, time to first echoed byte.
		start := time.Now()
		sess, err := tcpls.Dial("tcp", plainLn.Addr().String(), ccfg())
		if err != nil {
			log.Fatalf("full dial: %v", err)
		}
		st, err := sess.OpenStream()
		if err != nil {
			log.Fatal(err)
		}
		st.Write(req)
		if _, err := io.ReadFull(st, buf); err != nil {
			log.Fatalf("full echo: %v", err)
		}
		record("full", time.Since(start))
		tk := sess.ResumptionTicket() // may be nil; fetch separately below
		sess.Close()

		if tk == nil {
			if tk, err = perfTicket(plainLn.Addr().String(), ccfg()); err != nil {
				log.Fatal(err)
			}
		}

		// Ticket resumption (1-RTT).
		cfg := ccfg()
		cfg.Ticket = tk
		start = time.Now()
		sess, err = tcpls.Dial("tcp", plainLn.Addr().String(), cfg)
		if err != nil {
			log.Fatalf("resumed dial: %v", err)
		}
		st, err = sess.OpenStream()
		if err != nil {
			log.Fatal(err)
		}
		st.Write(req)
		if _, err := io.ReadFull(st, buf); err != nil {
			log.Fatalf("resumed echo: %v", err)
		}
		record("resumed", time.Since(start))
		sess.Close()

		// 0-RTT: a fresh ticket per iteration (the anti-replay register
		// admits each ticket nonce once).
		if tk, err = perfTicket(plainLn.Addr().String(), ccfg()); err != nil {
			log.Fatal(err)
		}
		cfg = ccfg()
		cfg.Ticket = tk
		cfg.EarlyData = req
		start = time.Now()
		sess, err = tcpls.Dial("tcp", plainLn.Addr().String(), cfg)
		if err != nil {
			log.Fatalf("0-RTT dial: %v", err)
		}
		if !sess.EarlyDataAccepted() {
			log.Fatal("0-RTT rejected on a fresh ticket")
		}
		est, ok := sess.EarlyStream()
		if !ok {
			log.Fatal("no early stream")
		}
		if _, err := io.ReadFull(est, buf); err != nil {
			log.Fatalf("0-RTT echo: %v", err)
		}
		record("zero_rtt", time.Since(start))
		sess.Close()

		// Joins, against the failover server: establish untimed, then
		// time join-to-first-echoed-byte.
		jcfg := ccfg()
		jcfg.EnableFailover = true
		sess, err = tcpls.Dial("tcp", foLn.Addr().String(), jcfg)
		if err != nil {
			log.Fatalf("join base dial: %v", err)
		}
		start = time.Now()
		connID, err := sess.JoinPath("tcp", foLn.Addr().String())
		if err != nil {
			log.Fatalf("join: %v", err)
		}
		st, err = sess.OpenStreamOn(connID)
		if err != nil {
			log.Fatal(err)
		}
		st.Write(req)
		if _, err := io.ReadFull(st, buf); err != nil {
			log.Fatalf("join echo: %v", err)
		}
		record("join", time.Since(start))
		sess.Close()

		sess, err = tcpls.Dial("tcp", foLn.Addr().String(), jcfg)
		if err != nil {
			log.Fatalf("fastjoin base dial: %v", err)
		}
		start = time.Now()
		_, st, err = sess.JoinPathFast("tcp", foLn.Addr().String(), req)
		if err != nil {
			log.Fatalf("fast join: %v", err)
		}
		if _, err := io.ReadFull(st, buf); err != nil {
			log.Fatalf("fast join echo: %v", err)
		}
		record("join_fast", time.Since(start))
		sess.Close()
	}

	res := benchResume{
		GeneratedBy: "tcpls-perf -resume",
		Iters:       iters,
		Note: "flights: exact RTT counts to the server first holding the request bytes, " +
			"from direction-switch counting over an in-memory duplex, +1 RTT for the TCP connect. " +
			"loopback: wall-clock time to the first echoed byte over 127.0.0.1 TCP.",
		Flights:    flights,
		LoopbackUS: map[string]quantiles{},
	}
	for name, ds := range loop {
		res.LoopbackUS[name] = summarize(ds)
	}

	out, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		log.Fatal(err)
	}
	out.Close()

	for _, name := range []string{"full", "resumed", "zero_rtt", "join", "join_fast"} {
		fmt.Printf("%-9s %.1f RTT to first server byte; loopback first echoed byte p50 %dus (p10 %d, p90 %d)\n",
			name, flights[name].RTT, res.LoopbackUS[name].P50US,
			res.LoopbackUS[name].P10US, res.LoopbackUS[name].P90US)
	}

	// Regression gate: the whole point of the resumption subsystem.
	if flights["zero_rtt"].RTT > flights["full"].RTT-1 {
		log.Fatalf("0-RTT saves less than one round trip: %.1f vs %.1f",
			flights["zero_rtt"].RTT, flights["full"].RTT)
	}
	if flights["join_fast"].RTT > flights["join"].RTT-1 {
		log.Fatalf("fast join saves less than one round trip: %.1f vs %.1f",
			flights["join_fast"].RTT, flights["join"].RTT)
	}
	fmt.Printf("wrote %s\n", outPath)
}

// ---------------------------------------------------------------------
// -resume-smoke: the CI restart probe.

// runResumeSmoke is one leg of the CI resume smoke test against a live
// tcpls-server. Without a saved ticket it performs a full handshake,
// waits for the server to issue one, and stores it at ticketPath. With
// a saved ticket it resumes — offering early data in the first flight —
// and exits nonzero unless the server accepted the ticket at 1-RTT and
// echoed the early bytes back intact. Run it once, restart the server
// (same -ticket-key-file), run it again: success proves tickets survive
// real process restarts.
//
// Across a restart the 0-RTT offer itself must be DECLINED: the fresh
// process's anti-replay register has no memory of flights the old one
// accepted, so its freshness gate refuses tickets issued before its
// birth. The probe asserts that rejection too — a server that accepts
// 0-RTT here has a replay hole.
func runResumeSmoke(addr, serverName, ticketPath string) {
	early := []byte("resume-smoke: 0-rtt across a restart\n")
	cfg := &tcpls.Config{ServerName: serverName}
	raw, err := os.ReadFile(ticketPath)
	resuming := err == nil
	if resuming {
		var t tcpls.ClientTicket
		if err := json.Unmarshal(raw, &t); err != nil {
			log.Fatalf("resume-smoke: corrupt ticket file %s: %v", ticketPath, err)
		}
		cfg.Ticket = &t
		cfg.EarlyData = early
	}
	sess, err := tcpls.Dial("tcp", addr, cfg)
	if err != nil {
		log.Fatalf("resume-smoke: dial %s: %v", addr, err)
	}
	defer sess.Close()

	if resuming {
		if !sess.Resumed() {
			log.Fatal("resume-smoke: ticket not accepted — resumption did not survive the restart")
		}
		if sess.EarlyDataAccepted() {
			log.Fatal("resume-smoke: 0-RTT accepted across a restart — anti-replay freshness gate failed")
		}
		st, ok := sess.EarlyStream()
		if !ok {
			log.Fatal("resume-smoke: no early stream for the 1-RTT fallback")
		}
		got := make([]byte, len(early))
		if _, err := io.ReadFull(st, got); err != nil {
			log.Fatalf("resume-smoke: early echo read: %v", err)
		}
		if string(got) != string(early) {
			log.Fatalf("resume-smoke: early echo corrupted: %q", got)
		}
		fmt.Println("resume-smoke: resumed at 1-RTT, 0-RTT correctly declined post-restart, early echo byte-exact")
		return
	}

	var ticket *tcpls.ClientTicket
	deadline := time.Now().Add(5 * time.Second)
	for ticket == nil && time.Now().Before(deadline) {
		ticket = sess.ResumptionTicket()
		time.Sleep(10 * time.Millisecond)
	}
	if ticket == nil {
		log.Fatal("resume-smoke: server issued no resumption ticket")
	}
	out, err := json.Marshal(ticket)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(ticketPath, out, 0o600); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resume-smoke: full handshake, ticket saved to %s\n", ticketPath)
}
