// Command tcpls-trace analyzes TCPLS qlog traces: live TraceJSON
// output, flight-recorder dumps, or the legacy flat schema.
//
// Usage:
//
//	tcpls-trace trace.qlog              # human-readable summary
//	tcpls-trace -json trace.qlog        # full report as JSON
//	tcpls-trace -series trace.qlog      # per-path goodput/RTT timeseries
//	tcpls-trace -check -max-gap 500ms < trace.qlog
//
// It reconstructs per-path goodput and RTT timeseries, failover gap
// durations (conn_failed to the first record on a surviving path),
// record-lifecycle span percentiles, and reorder-depth percentiles.
// With -check it exits 1 when the trace is malformed or violates
// invariants (inverted span legs, unclosed or over-budget failover
// gaps) — the chaos-test assertion mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"tcpls/internal/qlog"
)

var (
	jsonFlag     = flag.Bool("json", false, "emit the full report as JSON")
	seriesFlag   = flag.Bool("series", false, "print per-path goodput and RTT timeseries")
	healthFlag   = flag.Bool("health", false, "print the continuous-diagnosis verdict timeline")
	checkFlag    = flag.Bool("check", false, "exit 1 on malformed input or invariant violations")
	intervalFlag = flag.Duration("interval", 100*time.Millisecond, "timeseries bucket width")
	maxGapFlag   = flag.Duration("max-gap", 0, "with -check: fail if any failover gap exceeds this")
)

func main() {
	flag.Parse()
	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}

	events, perr := qlog.Parse(in)
	rep := qlog.Analyze(events, qlog.Options{Interval: *intervalFlag, MaxGap: *maxGapFlag})
	if perr != nil {
		rep.Violations = append(rep.Violations, perr.Error())
	}

	switch {
	case *jsonFlag:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	case *seriesFlag:
		printSeries(rep)
	case *healthFlag:
		printHealth(name, rep)
	default:
		printSummary(name, rep)
	}

	if *checkFlag && len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "tcpls-trace: %d violation(s):\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	if perr != nil && !*checkFlag {
		fatal(perr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcpls-trace:", err)
	os.Exit(1)
}

func us(v int64) time.Duration { return time.Duration(v) * time.Microsecond }

func printSummary(name string, rep *qlog.Report) {
	fmt.Printf("%s: %d events", name, rep.Events)
	if rep.EndUS > rep.StartUS {
		fmt.Printf(" over %v", us(rep.EndUS-rep.StartUS).Round(time.Millisecond))
	}
	fmt.Println()

	if len(rep.Paths) > 0 {
		fmt.Println("\nper-path records:")
		fmt.Println("  conn     sent  (data/ctl/retx)     recv  (dup)    acks s/r       bytes s/r")
		for _, p := range rep.Paths {
			fmt.Printf("  %4d %8d  (%d/%d/%d) %12d  (%d) %6d/%-6d %9d/%d\n",
				p.Conn, p.RecordsSent, p.DataSent, p.CtlSent, p.Retransmits,
				p.RecordsRecv, p.DupDropped, p.AcksSent, p.AcksReceived,
				p.BytesSent, p.BytesReceived)
		}
	}

	if len(rep.Failovers) > 0 {
		fmt.Println("\nfailover gaps:")
		for _, g := range rep.Failovers {
			if g.Closed {
				fmt.Printf("  conn %d -> conn %d: %v (%d retransmits)\n",
					g.FailedConn, g.TargetConn,
					us(g.DurationUS).Round(time.Microsecond), g.Retransmits)
			} else {
				fmt.Printf("  conn %d: UNCLOSED (failed at %dus, no traffic on another path)\n",
					g.FailedConn, g.StartUS)
			}
		}
	}

	r := rep.Resumption
	if r.TicketsIssued+r.TicketsReceived+r.ResumeAccepted+r.ResumeRejected+
		r.EarlyAccepted+r.EarlyRejected+r.JoinFastpath+len(r.JoinGaps) > 0 {
		fmt.Println("\nresumption:")
		if r.TicketsIssued+r.TicketsReceived+r.TicketsReissued > 0 {
			fmt.Printf("  tickets: issued %d  received %d  reissued %d\n",
				r.TicketsIssued, r.TicketsReceived, r.TicketsReissued)
		}
		if r.ResumeAccepted+r.ResumeRejected > 0 {
			fmt.Printf("  resume: accepted %d  rejected %d  (rate %.0f%%)\n",
				r.ResumeAccepted, r.ResumeRejected, r.ResumptionRate*100)
		}
		if r.EarlyAccepted+r.EarlyRejected > 0 {
			fmt.Printf("  0-rtt: accepted %d (%d bytes)  rejected %d\n",
				r.EarlyAccepted, r.EarlyBytes, r.EarlyRejected)
		}
		if len(r.JoinGaps) > 0 {
			fmt.Printf("  join gaps (%d fastpath):\n", r.JoinFastpath)
			for _, g := range r.JoinGaps {
				kind := "two-flight"
				if g.Fastpath {
					kind = "fastpath"
				}
				if g.Closed {
					fmt.Printf("    conn %d (%s): %v to first record\n",
						g.Conn, kind, us(g.DurationUS).Round(time.Microsecond))
				} else {
					fmt.Printf("    conn %d (%s): no record after join\n", g.Conn, kind)
				}
			}
		}
	}

	if rep.Spans.Count > 0 {
		fmt.Printf("\nrecord spans: %d (%d retransmitted)\n", rep.Spans.Count, rep.Spans.RetxSpans)
		fmt.Printf("  queue  (enq->seal):  p50 %-10v p99 %v\n", us(rep.Spans.QueueP50US), us(rep.Spans.QueueP99US))
		fmt.Printf("  wire   (write->ack): p50 %-10v p99 %v\n", us(rep.Spans.WireP50US), us(rep.Spans.WireP99US))
		fmt.Printf("  total  (enq->ack):   p50 %-10v p99 %-10v max %v\n",
			us(rep.Spans.TotalP50US), us(rep.Spans.TotalP99US), us(rep.Spans.TotalMaxUS))
	}

	if rep.Reorder.Samples > 0 {
		fmt.Printf("\nreorder depth (%d samples): p50 %d  p90 %d  p99 %d  max %d\n",
			rep.Reorder.Samples, rep.Reorder.P50, rep.Reorder.P90, rep.Reorder.P99, rep.Reorder.Max)
	}

	if rep.Health.Events > 0 {
		fmt.Printf("\nhealth: %d verdict transition(s)", rep.Health.Events)
		if len(rep.Health.Open) > 0 {
			fmt.Printf(", open at trace end: %v", rep.Health.Open)
		}
		fmt.Println("  (use -health for the timeline)")
	}

	if len(rep.Violations) > 0 {
		fmt.Printf("\nviolations (%d):\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Printf("  %s\n", v)
		}
	}
}

// printHealth renders the continuous-diagnosis verdict timeline: one
// line per transition, relative to trace start, with the evidence
// scalar the monitor attached.
func printHealth(name string, rep *qlog.Report) {
	h := rep.Health
	fmt.Printf("%s: %d health verdict transition(s)\n", name, h.Events)
	if h.Events == 0 {
		return
	}
	fmt.Println("\nverdict timeline:")
	for _, mk := range h.Timeline {
		t := us(mk.TimeUS - rep.StartUS).Round(time.Millisecond)
		state := "cleared"
		if mk.Raised {
			state = "RAISED"
		}
		if mk.Kind == "healthy" {
			fmt.Printf("  %10v  healthy (all verdicts cleared)\n", t)
			continue
		}
		fmt.Printf("  %10v  %-7s %s", t, state, mk.Kind)
		if mk.Conn != 0 {
			fmt.Printf("  conn %d", mk.Conn)
		}
		if mk.Value != 0 {
			fmt.Printf("  value %d", mk.Value)
		}
		fmt.Println()
	}
	if len(h.Open) > 0 {
		fmt.Printf("\nopen at trace end: %v\n", h.Open)
	} else {
		fmt.Println("\nall verdicts cleared by trace end")
	}
}

// printSeries dumps gnuplot-friendly columns: one block per path per
// series, blank-line separated.
func printSeries(rep *qlog.Report) {
	for _, ps := range rep.Goodput {
		fmt.Printf("# goodput conn %d (time_s bytes_per_s)\n", ps.Conn)
		for _, b := range ps.Buckets {
			fmt.Printf("%.3f %.0f\n", float64(b.StartUS-rep.StartUS)/1e6, b.Value)
		}
		fmt.Println()
	}
	for _, ps := range rep.RTT {
		fmt.Printf("# rtt conn %d (time_s rtt_us)\n", ps.Conn)
		for _, b := range ps.Buckets {
			fmt.Printf("%.3f %.0f\n", float64(b.StartUS-rep.StartUS)/1e6, b.Value)
		}
		fmt.Println()
	}
}
