// Command tcpls-file transfers a file over a TCPLS session, optionally
// aggregating two network paths with coupled streams (the paper's §5.5
// workload as a usable tool).
//
// Server:  tcpls-file -server -listen :4443
// Send:    tcpls-file -connect host:4443 -send path/to/file
//
//	[-second-path host2:4443]  # join and aggregate over a second path
//
// The server writes received files to the current directory under the
// transmitted name (sanitized).
package main

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tcpls"
)

var (
	serverFlag = flag.Bool("server", false, "run as server")
	listenFlag = flag.String("listen", ":4443", "listen address")
	connectF   = flag.String("connect", "", "server address")
	sendFlag   = flag.String("send", "", "file to send")
	secondPath = flag.String("second-path", "", "second server address to join for aggregation")
	nameFlag   = flag.String("name", "files.tcpls", "server certificate name")
	metricsF   = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address")
)

func main() {
	flag.Parse()
	if *metricsF != "" {
		closer, err := tcpls.ServeTelemetry(*metricsF)
		if err != nil {
			log.Fatal(err)
		}
		defer closer.Close()
		log.Printf("telemetry on http://%s/metrics", *metricsF)
	}
	if *serverFlag {
		runServer()
		return
	}
	if *connectF == "" || *sendFlag == "" {
		fmt.Fprintln(os.Stderr, "need -server, or -connect and -send")
		os.Exit(2)
	}
	runClient()
}

// header: coupled flag (1 byte) + name length (2 bytes) + name +
// file size (8 bytes).
func writeHeader(w io.Writer, name string, size int64, coupled bool) error {
	base := filepath.Base(name)
	buf := make([]byte, 3+len(base)+8)
	if coupled {
		buf[0] = 1
	}
	binary.BigEndian.PutUint16(buf[1:], uint16(len(base)))
	copy(buf[3:], base)
	binary.BigEndian.PutUint64(buf[3+len(base):], uint64(size))
	_, err := w.Write(buf)
	return err
}

func readHeader(r io.Reader) (string, int64, bool, error) {
	var fixed [3]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return "", 0, false, err
	}
	coupled := fixed[0] == 1
	nameBuf := make([]byte, binary.BigEndian.Uint16(fixed[1:]))
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return "", 0, false, err
	}
	var sizeBuf [8]byte
	if _, err := io.ReadFull(r, sizeBuf[:]); err != nil {
		return "", 0, false, err
	}
	name := strings.ReplaceAll(string(nameBuf), "/", "_")
	return name, int64(binary.BigEndian.Uint64(sizeBuf[:])), coupled, nil
}

func runServer() {
	cert, err := tcpls.NewCertificate(*nameFlag)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := tcpls.Listen("tcp", *listenFlag, &tcpls.Config{Certificate: cert})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("tcpls-file server on %s", ln.Addr())
	for {
		sess, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			defer sess.Close()
			st, err := sess.AcceptStream(context.Background())
			if err != nil {
				return
			}
			name, size, coupled, err := readHeader(st)
			if err != nil {
				log.Printf("bad header: %v", err)
				return
			}
			out, err := os.Create(name + ".recv")
			if err != nil {
				log.Print(err)
				return
			}
			defer out.Close()
			var body io.Reader = st
			if coupled {
				body = coupledReader{sess}
			}
			start := time.Now()
			n, err := io.CopyN(out, body, size)
			if err != nil && err != io.EOF {
				log.Printf("receive: %v after %d bytes", err, n)
				return
			}
			log.Printf("received %q: %d bytes in %v (%.2f Mbps)",
				name, n, time.Since(start), float64(n)*8/time.Since(start).Seconds()/1e6)
		}()
	}
}

// coupledReader adapts ReadCoupled to io.Reader.
type coupledReader struct{ sess *tcpls.Session }

func (r coupledReader) Read(p []byte) (int, error) { return r.sess.ReadCoupled(p) }

func runClient() {
	f, err := os.Open(*sendFlag)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}

	sess, err := tcpls.Dial("tcp", *connectF, &tcpls.Config{ServerName: *nameFlag})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	st, err := sess.OpenStream()
	if err != nil {
		log.Fatal(err)
	}
	if err := writeHeader(st, *sendFlag, info.Size(), *secondPath != ""); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	var writer io.Writer = st
	if *secondPath != "" {
		conn2, err := sess.JoinPath("tcp", *secondPath)
		if err != nil {
			log.Fatalf("join second path: %v", err)
		}
		st2, err := sess.OpenStreamOn(conn2)
		if err != nil {
			log.Fatal(err)
		}
		if err := sess.Couple(st, st2); err != nil {
			log.Fatal(err)
		}
		writer = coupledWriter{sess}
		log.Printf("aggregating over two paths (conn 0 and %d)", conn2)
	}
	n, err := io.Copy(writer, f)
	if err != nil {
		log.Fatal(err)
	}
	st.Close()
	elapsed := time.Since(start)
	fmt.Printf("sent %d bytes in %v (%.2f Mbps)\n", n, elapsed, float64(n)*8/elapsed.Seconds()/1e6)
}

type coupledWriter struct{ sess *tcpls.Session }

func (w coupledWriter) Write(p []byte) (int, error) { return w.sess.WriteCoupled(p) }
