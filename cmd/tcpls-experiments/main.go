// Command tcpls-experiments regenerates the tables and figures of
// "TCPLS: Modern Transport Services with TCP and TLS" (CoNEXT 2021).
//
// Usage:
//
//	tcpls-experiments -run all            # everything (several minutes)
//	tcpls-experiments -run table1
//	tcpls-experiments -run fig7 [-bytes N] [-mtu 1500|9000|both]
//	tcpls-experiments -run fig8|fig9|fig10|fig11|fig12|fig13
//	tcpls-experiments -run fig11 -series  # also dump goodput series
//
// Each experiment prints the paper's reported quantity (recovery times,
// goodput levels, throughput bars) followed by the measured shape
// assertions EXPERIMENTS.md records.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tcpls/internal/experiments"
)

var (
	runFlag    = flag.String("run", "all", "experiment: all, table1, fig7, fig8, fig9, fig10, fig11, fig12, fig13")
	bytesFlag  = flag.Int("bytes", 256<<20, "bulk bytes for fig7")
	mtuFlag    = flag.String("mtu", "both", "fig7 MTU: 1500, 9000, or both")
	seriesFlag = flag.Bool("series", false, "print full goodput series (gnuplot format)")
)

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

func main() {
	flag.Parse()
	run := map[string]func() error{
		"table1": table1,
		"fig7":   fig7,
		"fig8":   fig8,
		"fig9":   fig9,
		"fig10":  fig10,
		"fig11":  func() error { return fig11(16368, "FIG11") },
		"fig12":  fig12,
		"fig13":  func() error { return fig11(1500, "FIG13") },
	}
	order := []string{"table1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig13", "fig12"}
	if *runFlag == "all" {
		for _, name := range order {
			if err := run[name](); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	f, ok := run[*runFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *runFlag)
		os.Exit(2)
	}
	if err := f(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", *runFlag, err)
		os.Exit(1)
	}
}

func table1() error {
	fmt.Println("== Table 1: transport services per stack ==")
	fmt.Printf("%-42s %-6s %-8s %-8s %-8s %-6s\n", "Service", "TCP", "MPTCP", "TLS/TCP", "QUIC", "TCPLS")
	for _, r := range experiments.Table1() {
		fmt.Printf("%-42s %-6s %-8s %-8s %-8s %-6s\n", r.Service, r.TCP, r.MPTCP, r.TLSTCP, r.QUIC, r.TCPLS)
	}
	fmt.Println()
	return nil
}

func fig7() error {
	fmt.Println("== Fig. 7: raw throughput (this machine's CPU; compare ratios, not absolutes) ==")
	mtus := []int{1500, 9000}
	switch *mtuFlag {
	case "1500":
		mtus = []int{1500}
	case "9000":
		mtus = []int{9000}
	}
	for _, mtu := range mtus {
		rows, err := experiments.Fig7(mtu, *bytesFlag)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("  MTU=%-5d %-16s %6.2f Gbps  %8.0f kpps\n", r.MTU, r.Stack, r.Gbps, r.KPPS)
		}
	}
	fmt.Println()
	return nil
}

func fig8() error {
	fmt.Println("== Fig. 8: recovery from a single outage (TCPLS vs MPTCP) ==")
	for _, outage := range []string{"blackhole", "rst"} {
		r, err := experiments.Fig8(outage)
		if err != nil {
			return err
		}
		fmt.Printf("  %-9s  TCPLS recovery %-8v  MPTCP recovery %-8v  (goodput after: %.1f / %.1f Mbps)\n",
			outage, r.TCPLSRecovery, r.MPTCPRecovery,
			r.TCPLS.MeanBetween(sec(6), sec(15)), r.MPTCP.MeanBetween(sec(6), sec(15)))
		if *seriesFlag {
			fmt.Print(experiments.FormatSeries(r.TCPLS))
			fmt.Print(experiments.FormatSeries(r.MPTCP))
		}
	}
	fmt.Println()
	return nil
}

func fig9() error {
	fmt.Println("== Fig. 9: 60 MB download under rotating outages (3 of 4 paths down, rotating every 5 s) ==")
	r, err := experiments.Fig9()
	if err != nil {
		return err
	}
	fmt.Printf("  TCPLS completed in %v; MPTCP completed in %v\n", r.TCPLSDone, r.MPTCPDone)
	if *seriesFlag {
		fmt.Print(experiments.FormatSeries(r.TCPLS))
		fmt.Print(experiments.FormatSeries(r.MPTCP))
	}
	fmt.Println()
	return nil
}

func fig10() error {
	fmt.Println("== Fig. 10: application-triggered connection migration (60 MiB, v4 -> v6 -> v4) ==")
	r, err := experiments.Fig10()
	if err != nil {
		return err
	}
	fmt.Printf("  completed in %v; migrations at %v and %v\n", r.Done, r.Migrations[0], r.Migrations[1])
	fmt.Printf("  goodput: before=%.1f  between=%.1f  after=%.1f Mbps (sustained through both migrations)\n",
		r.Goodput.MeanBetween(sec(2), sec(6)),
		r.Goodput.MeanBetween(sec(9), sec(12)),
		r.Goodput.MeanBetween(sec(15), sec(18)))
	fmt.Printf("  peak inside first migration window: %.1f Mbps (temporary two-path aggregation)\n",
		maxWindow(r.Goodput, r.Migrations[0], r.Migrations[0]+sec(3)))
	if *seriesFlag {
		fmt.Print(experiments.FormatSeries(r.Goodput))
	}
	fmt.Println()
	return nil
}

func fig11(recordSize int, label string) error {
	fmt.Printf("== %s: bandwidth aggregation, second path at t=5 s (record payload %d B) ==\n", label, recordSize)
	r, err := experiments.Fig11(recordSize)
	if err != nil {
		return err
	}
	fmt.Printf("  TCPLS:  single-path %.1f Mbps -> aggregated %.1f Mbps (done %v)\n",
		r.TCPLS.MeanBetween(sec(2), sec(5)), r.TCPLS.MeanBetween(sec(9), sec(16)), r.TCPLSDone)
	fmt.Printf("  MPTCP:  single-path %.1f Mbps -> aggregated %.1f Mbps (done %v)\n",
		r.MPTCP.MeanBetween(sec(2), sec(5)), r.MPTCP.MeanBetween(sec(9), sec(16)), r.MPTCPDone)
	fmt.Printf("  TCPLS goodput jitter in the aggregated region: %.2f Mbps stddev\n",
		experiments.Jitter(r.TCPLS, sec(9), sec(16)))
	if *seriesFlag {
		fmt.Print(experiments.FormatSeries(r.TCPLS))
		fmt.Print(experiments.FormatSeries(r.MPTCP))
	}
	fmt.Println()
	return nil
}

func fig12() error {
	fmt.Println("== Fig. 12: eBPF congestion-controller exchange over a shared 100 Mbps / 60 ms bottleneck ==")
	r, err := experiments.Fig12()
	if err != nil {
		return err
	}
	fmt.Printf("  bytecode shipped, verified and attached: %v (swap at %v)\n", r.Swapped, r.SwapAt)
	fmt.Printf("  unfair  [10s,15s): session1(vegas)=%.1f  session2(cubic)=%.1f Mbps\n",
		r.Vegas.MeanBetween(sec(10), sec(15)), r.Cubic.MeanBetween(sec(10), sec(15)))
	fmt.Printf("  post-swap [40s,50s): session1(cubic-bpf)=%.1f  session2(cubic)=%.1f Mbps\n",
		r.Vegas.MeanBetween(sec(40), sec(50)), r.Cubic.MeanBetween(sec(40), sec(50)))
	if *seriesFlag {
		fmt.Print(experiments.FormatSeries(r.Vegas))
		fmt.Print(experiments.FormatSeries(r.Cubic))
	}
	fmt.Println()
	return nil
}

func maxWindow(s experiments.Series, from, to time.Duration) float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.T >= from && p.T < to && p.Mbps > m {
			m = p.Mbps
		}
	}
	return m
}
