// Command tcpls-top is the live operator view: it polls a TCPLS
// telemetry endpoint (/debug/tcpls for conn/stream state,
// /debug/tcpls/health for the continuous self-diagnosis) and renders a
// per-session, per-path table in the terminal — goodput, RTT, reorder
// depth, retransmit ratio, and the health verdicts the monitor has
// raised — plus the process-wide rollup row (resumption and 0-RTT
// counters, ticket-rotation failures, admission pressure).
//
// Usage:
//
//	tcpls-top -addr 127.0.0.1:9090              # live view, 1s refresh
//	tcpls-top -addr 127.0.0.1:9090 -once        # one plain frame (CI/scripts)
//	tcpls-top -addr 127.0.0.1:9090 -interval 250ms
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"tcpls"
	"tcpls/internal/health"
)

var (
	addrFlag     = flag.String("addr", "127.0.0.1:9090", "telemetry endpoint (host:port of Config.Telemetry.Addr)")
	intervalFlag = flag.Duration("interval", time.Second, "refresh period")
	onceFlag     = flag.Bool("once", false, "print one frame without clearing the screen and exit")
)

type debugPage struct {
	Sessions map[string]tcpls.DebugSession `json:"sessions"`
}

type healthPage struct {
	Health map[string]health.Status `json:"health"`
}

func main() {
	flag.Parse()
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		frame, err := buildFrame(client, *addrFlag)
		if err != nil {
			if *onceFlag {
				fmt.Fprintln(os.Stderr, "tcpls-top:", err)
				os.Exit(1)
			}
			frame = fmt.Sprintf("tcpls-top: %v (retrying every %v)\n", err, *intervalFlag)
		}
		if *onceFlag {
			fmt.Print(frame)
			return
		}
		// Clear screen + home, then the frame — one write per refresh so
		// the terminal never shows a half-drawn table.
		fmt.Print("\x1b[2J\x1b[H" + frame)
		time.Sleep(*intervalFlag)
	}
}

func get(client *http.Client, addr, path string, into any) error {
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func buildFrame(client *http.Client, addr string) (string, error) {
	var dbg debugPage
	var hp healthPage
	if err := get(client, addr, "/debug/tcpls", &dbg); err != nil {
		return "", err
	}
	if err := get(client, addr, "/debug/tcpls/health", &hp); err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "tcpls-top  %s  %s  sessions: %d\n",
		addr, time.Now().Format("15:04:05"), len(dbg.Sessions))

	if proc, ok := hp.Health["process"]; ok {
		writeProcess(&b, proc)
	}

	keys := make([]string, 0, len(dbg.Sessions))
	for k := range dbg.Sessions {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	if len(keys) > 0 {
		fmt.Fprintf(&b, "\n%-22s %-6s %-9s %9s %9s %6s %8s %7s %8s %5s %4s\n",
			"SESSION", "ROLE", "STATE", "TX/s", "RX/s", "RETX%", "RTT", "REORD", "MEM", "CONNS", "STRM")
	}
	for _, k := range keys {
		ds := dbg.Sessions[k]
		hs, haveHealth := hp.Health[k]
		writeSession(&b, k, ds, hs, haveHealth)
	}
	return b.String(), nil
}

// writeProcess renders the process monitor's row and its operator
// rollup: the resumption/0-RTT/ticket-rotation and admission families a
// fleet operator watches first.
func writeProcess(b *strings.Builder, st health.Status) {
	state := "healthy"
	if !st.Healthy {
		names := make([]string, 0, len(st.Active))
		for _, v := range st.Active {
			names = append(names, v.Name)
		}
		state = strings.Join(names, ",")
	}
	fmt.Fprintf(b, "process: %s", state)
	r := st.Rollup
	if len(r) > 0 {
		fmt.Fprintf(b, "  sessions %d  mem %s", int64(r["tcpls_server_sessions"]),
			fmtBytes(int64(r["tcpls_server_memory_bytes"])))
		fmt.Fprintf(b, "\n  resume %d/%d acc/rej  0rtt %d/%d acc/rej (%s)  join-fastpath %d  replay-entries %d",
			int64(r["tcpls_resume_accepted_total"]), int64(r["tcpls_resume_rejected_total"]),
			int64(r["tcpls_early_data_accepted_total"]), int64(r["tcpls_early_data_rejected_total"]),
			fmtBytes(int64(r["tcpls_early_data_bytes_total"])),
			int64(r["tcpls_join_fastpath_total"]), int64(r["tcpls_replay_entries"]))
		fmt.Fprintf(b, "\n  rotate-failures %d  admission %d/%d acc/rej",
			int64(r["tcpls_ticket_rotate_failures_total"]),
			int64(r["tcpls_server_accepted_total"]), int64(r["tcpls_server_rejected_total"]))
	}
	fmt.Fprintln(b)
}

func writeSession(b *strings.Builder, key string, ds tcpls.DebugSession, hs health.Status, haveHealth bool) {
	state := "-"
	var txBps, rxBps, retx, rttUS, reord float64
	if haveHealth {
		state = "healthy"
		if !hs.Healthy {
			names := make([]string, 0, len(hs.Active))
			for _, v := range hs.Active {
				names = append(names, v.Name)
			}
			state = strings.Join(names, ",")
		}
		txBps, rxBps = hs.GoodputTxBps, hs.GoodputRxBps
		retx = hs.RetransmitRatio * 100
		rttUS = hs.AckRTTUS
		reord = hs.ReorderDepth
	}
	fmt.Fprintf(b, "%-22s %-6s %-9s %9s %9s %5.1f%% %8s %7.0f %8s %5d %4d\n",
		key, ds.Role, state,
		fmtBps(txBps), fmtBps(rxBps), retx,
		fmtUS(rttUS), reord, fmtBytes(int64(ds.MemoryBytes)),
		len(ds.Conns), len(ds.Streams))

	// Per-path subrows: join the debug conn table (scheduler view) with
	// the health monitor's per-path goodput rings.
	pathTx := map[uint32]float64{}
	if haveHealth {
		for _, p := range hs.Paths {
			pathTx[p.Conn] = p.GoodputTxBps
		}
	}
	for _, c := range ds.Conns {
		if c.Closed {
			continue
		}
		flags := ""
		if c.Failed {
			flags = " FAILED"
		}
		if c.RecvPaused {
			flags += " paused"
		}
		fmt.Fprintf(b, "  conn %-4d %9s tx  srtt %-8s rate %9s  inflight %-8s%s\n",
			c.ID, fmtBps(pathTx[c.ID]), fmtUS(float64(c.SRTTUS)),
			fmtBps(c.DeliveryRate), fmtBytes(int64(c.InFlight)), flags)
	}
}

// fmtBps humanizes a bytes-per-second rate.
func fmtBps(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fGB/s", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fMB/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fKB/s", v/1e3)
	default:
		return fmt.Sprintf("%.0fB/s", v)
	}
}

func fmtBytes(v int64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}

func fmtUS(us float64) string {
	if us <= 0 {
		return "-"
	}
	return (time.Duration(us) * time.Microsecond).Round(10 * time.Microsecond).String()
}
