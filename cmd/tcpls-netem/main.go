// Command tcpls-netem runs a standalone fault-injection TCP relay
// (internal/netem) between a client and a server, driven by one-word
// commands on stdin — the shell-scriptable harness the CI health-smoke
// job uses to stall a live transfer and watch the self-diagnosis react.
//
// Usage:
//
//	tcpls-netem -connect 127.0.0.1:4443
//
// The relay's dialable address is printed alone on the first stdout
// line; point the client at it. Then each stdin line applies a fault:
//
//	stall      freeze both directions (sockets stay open, nothing moves)
//	unstall    resume forwarding
//	blackhole  kill all connections and refuse new ones
//	restore    accept connections again
//	rst        abort every forwarded connection with a TCP RST
//	quit       close the relay and exit
//
// Each applied command is acknowledged with "ok <command>" on stdout.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tcpls/internal/netem"
)

var (
	connectFlag = flag.String("connect", "", "target address to relay toward (required)")
	rateFlag    = flag.Int64("rate", 0, "per-direction rate limit in bits/s (0 = unlimited)")
	delayFlag   = flag.Duration("delay", 0, "one-way added latency per direction")
)

func main() {
	flag.Parse()
	if *connectFlag == "" {
		fmt.Fprintln(os.Stderr, "tcpls-netem: -connect is required")
		os.Exit(2)
	}
	prof := netem.Profile{RateBps: *rateFlag, Delay: *delayFlag}
	relay, err := netem.NewRelay(*connectFlag, prof, prof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcpls-netem:", err)
		os.Exit(1)
	}
	defer relay.Close()
	fmt.Println(relay.Addr())

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		cmd := strings.TrimSpace(sc.Text())
		switch cmd {
		case "":
			continue
		case "stall":
			relay.Stall()
		case "unstall":
			relay.Unstall()
		case "blackhole":
			relay.Blackhole()
		case "restore":
			relay.Restore()
		case "rst":
			relay.RST()
		case "quit", "exit":
			fmt.Println("ok quit")
			return
		default:
			fmt.Fprintf(os.Stderr, "tcpls-netem: unknown command %q\n", cmd)
			continue
		}
		fmt.Println("ok " + cmd)
	}
	// Stdin closed (driver went away): linger briefly so in-flight
	// traffic drains, then exit via the deferred Close.
	time.Sleep(100 * time.Millisecond)
}
