// Command tcpls-server runs the production TCPLS server runtime
// (internal/server): thousands of concurrent sessions behind
// accept-edge admission control, a process memory budget, and graceful
// drain on SIGINT/SIGTERM.
//
//	tcpls-server -listen :4443 -mode echo
//	tcpls-server -listen :4443 -mode file -root /srv/files
//
// Observability:
//
//	tcpls-server -metrics-addr 127.0.0.1:9090
//	curl 127.0.0.1:9090/metrics       # tcpls_* and tcpls_server_* families
//	curl 127.0.0.1:9090/debug/tcpls   # live registry/budget/session state
//
// Load shedding:
//
//	-max-sessions 5000          cap registered sessions
//	-accept-rate 200            handshakes/sec token bucket
//	-memory-budget 268435456    shed when buffered memory nears 256 MiB
//	-max-handshakes-per-ip 32   concurrent handshakes from one IP
//	-join-rate-per-ip 10        cookie/join attempts per second per IP
//
// Resumption across restarts:
//
//	tcpls-server -ticket-key-file /var/lib/tcpls/ticket.keys \
//	             -ticket-key-pass "$TCPLS_TICKET_PASSPHRASE" \
//	             -ticket-rotate 1h
//
// The key file is created on first start and encrypted under the
// passphrase (flag, or the TCPLS_TICKET_PASSPHRASE environment
// variable). Tickets issued before a restart resume at 1-RTT against
// the restarted process; their 0-RTT offers are deliberately declined
// (the fresh process's anti-replay register has no memory of flights
// the old one accepted) and the early bytes fall back losslessly to
// 1-RTT. -ticket-rotate rolls the sealing key periodically: the
// previous generation stays accepted and its tickets are reissued on
// use, so rotation is invisible to clients.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"tcpls"
	"tcpls/internal/server"
)

var (
	listenFlag  = flag.String("listen", ":4443", "listen address")
	modeFlag    = flag.String("mode", "echo", "handler: echo or file")
	rootFlag    = flag.String("root", ".", "file-serving root (-mode file)")
	nameFlag    = flag.String("name", "server.tcpls", "server certificate name")
	metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, /debug/tcpls, and /debug/pprof on this address")

	healthIv = flag.Duration("health-interval", 0, "self-diagnosis sampling tick (0 = 1s default; needs -metrics-addr)")
	qlogDir  = flag.String("qlog-dir", "", "write one qlog trace per session into this directory")

	failoverF = flag.Bool("failover", false, "enable failover (record acks)")
	hsTimeout = flag.Duration("handshake-timeout", 0, "per-connection handshake deadline (0 = 10s default, negative disables)")

	ticketKeyFile = flag.String("ticket-key-file", "", "persistent ticket-key file: resumption tickets survive restarts")
	ticketKeyPass = flag.String("ticket-key-pass", "", "passphrase for -ticket-key-file (default: $TCPLS_TICKET_PASSPHRASE)")
	ticketRotate  = flag.Duration("ticket-rotate", 0, "rotate the ticket key on this period (0 = never)")
	maxEarlyData  = flag.Int("max-early-data", 0, "0-RTT early-data budget in bytes (0 = 16 KiB default, negative refuses)")

	maxSessions  = flag.Int("max-sessions", 0, "cap concurrent sessions (0 = unlimited)")
	acceptRate   = flag.Float64("accept-rate", 0, "handshake admissions per second (0 = unlimited)")
	acceptBurst  = flag.Int("accept-burst", 0, "accept token-bucket depth (0 = rate)")
	memoryBudget = flag.Int64("memory-budget", 0, "process buffered-memory budget in bytes (0 = unlimited)")
	perIPHs      = flag.Int("max-handshakes-per-ip", 0, "concurrent handshakes per remote IP (0 = unlimited)")
	perIPJoins   = flag.Float64("join-rate-per-ip", 0, "join attempts per second per remote IP (0 = unlimited)")
	drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline before force-closing sessions")
)

func main() {
	flag.Parse()

	var handler server.Handler
	switch *modeFlag {
	case "echo":
		handler = server.Echo()
	case "file":
		handler = server.Files(*rootFlag)
	default:
		log.Fatalf("unknown -mode %q (want echo or file)", *modeFlag)
	}

	cert, err := tcpls.NewCertificate(*nameFlag)
	if err != nil {
		log.Fatal(err)
	}
	tcfg := &tcpls.Config{
		Certificate:      cert,
		EnableFailover:   *failoverF,
		HandshakeTimeout: *hsTimeout,
		MaxEarlyData:     *maxEarlyData,
	}
	pass := *ticketKeyPass
	if pass == "" {
		pass = os.Getenv("TCPLS_TICKET_PASSPHRASE")
	}
	if *ticketKeyFile != "" && pass == "" {
		log.Fatal("-ticket-key-file requires -ticket-key-pass or $TCPLS_TICKET_PASSPHRASE")
	}
	if *metricsAddr != "" {
		closer, err := tcpls.ServeTelemetry(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer closer.Close()
		tcfg.Telemetry.Addr = *metricsAddr
		log.Printf("telemetry on http://%s/metrics, /debug/tcpls, and /debug/tcpls/health", *metricsAddr)
	}
	tcfg.Health.Interval = *healthIv
	if *qlogDir != "" {
		// Per-session qlog artifacts: wrap the handler so every accepted
		// session streams its trace (health verdicts included) to its own
		// file; the sink flushes when the session closes.
		if err := os.MkdirAll(*qlogDir, 0o755); err != nil {
			log.Fatal(err)
		}
		inner := handler
		var qlogSeq atomic.Uint64
		handler = func(s *tcpls.Session) {
			name := filepath.Join(*qlogDir, fmt.Sprintf("sess-%d.qlog", qlogSeq.Add(1)))
			if f, err := os.Create(name); err == nil {
				s.TraceJSON(f)
			} else {
				log.Printf("tcpls-server: qlog %s: %v", name, err)
			}
			inner(s)
		}
	}

	srv := server.New(server.Config{
		TCPLS: tcfg,
		Limits: server.Limits{
			AcceptRate:         *acceptRate,
			AcceptBurst:        *acceptBurst,
			MaxHandshakesPerIP: *perIPHs,
			JoinRatePerIP:      *perIPJoins,
			MaxSessions:        *maxSessions,
		},
		MemoryBudget:        *memoryBudget,
		Handler:             handler,
		TicketKeyFile:       *ticketKeyFile,
		TicketKeyPassphrase: []byte(pass),
		TicketRotate:        *ticketRotate,
	})

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe("tcp", *listenFlag) }()
	log.Printf("tcpls-server: %s mode on %s", *modeFlag, *listenFlag)

	select {
	case err := <-errCh:
		if err != nil {
			log.Fatal(err)
		}
		return
	case sig := <-sigs:
		log.Printf("tcpls-server: %v — draining (deadline %s)", sig, *drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("tcpls-server: drain deadline hit, sessions force-closed: %v", err)
	} else {
		log.Printf("tcpls-server: drained cleanly")
	}
	<-errCh
}
