// Command tcpls-fleet runs one seed-reproducible chaos campaign: a
// fleet of TCPLS sessions driven through a randomized fault schedule
// over the discrete-event simulator, with the four fleet invariants
// (byte-exactness, bounded memory, zero goroutine leaks, telemetry
// count-closure) checked at the end.
//
//	tcpls-fleet -seed 42 -sessions 1000
//	tcpls-fleet -seed 42 -sessions 1000 -qlog out/   # drop artifacts on failure
//
// On a green campaign it prints the fingerprint and exits 0. On a
// failing campaign it prints every violation, the one-line `go test`
// repro, a ddmin-shrunk minimal fault schedule, optionally writes the
// implicated session's qlog trace (analyzable with `tcpls-trace
// -check`), and exits 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tcpls/internal/fleet"
	"tcpls/internal/sim"
)

var (
	seedFlag     = flag.Int64("seed", 1, "campaign seed (determines workload and fault schedule)")
	sessionsFlag = flag.Int("sessions", 1000, "fleet size")
	faultsFlag   = flag.Int("faults", 0, "fault events to schedule (0 = sessions/8, min 8)")
	durationFlag = flag.Duration("duration", 0, "fault-injection window in virtual time (0 = 900ms)")
	pathsFlag    = flag.Int("paths", 0, "paths per session (0 = 2)")
	racksFlag    = flag.Int("racks", 0, "correlated failure domains (0 = 8)")
	transferFlag = flag.Int("transfer", 0, "per-session transfer bytes (0 = 64 KiB)")
	injectFlag   = flag.Bool("inject-reorder-bug", false, "disable the buffer caps (the harness self-test: the campaign must fail)")
	qlogFlag     = flag.String("qlog", "", "directory for failure qlog artifacts (empty = none)")
	shrinkFlag   = flag.Bool("shrink", true, "on failure, ddmin-shrink the fault schedule")
)

func main() {
	flag.Parse()
	sc := fleet.Scenario{
		Seed:             *seedFlag,
		Sessions:         *sessionsFlag,
		Faults:           *faultsFlag,
		Duration:         sim.Time(*durationFlag),
		PathsPerSession:  *pathsFlag,
		Racks:            *racksFlag,
		TransferBytes:    *transferFlag,
		InjectReorderBug: *injectFlag,
	}

	start := time.Now()
	res := fleet.Run(sc)
	wall := time.Since(start).Round(time.Millisecond)

	fmt.Printf("campaign: seed=%d sessions=%d faults=%d virtual=%v wall=%v quiesced=%v\n",
		res.Scenario.Seed, res.Scenario.Sessions, len(res.Scenario.Schedule),
		res.EndVirtual, wall, res.Quiesced)
	fmt.Printf("fingerprint: %s\n", res.Fingerprint())

	if !res.Failed() {
		fmt.Println("all invariants hold")
		return
	}

	fmt.Printf("%d violations:\n", len(res.Violations))
	for i, v := range res.Violations {
		if i >= 20 {
			fmt.Printf("  ... and %d more\n", len(res.Violations)-i)
			break
		}
		fmt.Printf("  %s\n", v)
	}
	fmt.Printf("repro: %s\n", res.ReproLine())

	if *qlogFlag != "" {
		if path, err := writeArtifact(res, *qlogFlag); err != nil {
			fmt.Fprintf(os.Stderr, "qlog artifact: %v\n", err)
		} else {
			fmt.Printf("qlog artifact: %s (analyze with: tcpls-trace -check %s)\n", path, path)
		}
	}

	if *shrinkFlag {
		min, _, trials := fleet.Shrink(sc)
		fmt.Printf("shrunk to %d fault events in %d trials:\n", len(min.Schedule), trials)
		for _, ev := range min.Schedule {
			fmt.Printf("  t=%v %s session=%d path=%d rack=%d stride=%d dur=%v\n",
				ev.At, ev.Kind, ev.Session, ev.Path, ev.Rack, ev.Stride, ev.Dur)
		}
	}
	os.Exit(1)
}

// writeArtifact re-runs the campaign with tracing armed on the first
// implicated session and writes its qlog trace under dir.
func writeArtifact(res *fleet.Result, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	target := res.Violations[0].Session
	if target < 0 {
		target = 0
	}
	path := filepath.Join(dir, fmt.Sprintf("fleet-seed%d-session%d.qlog", res.Scenario.Seed, target))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if _, err := fleet.RunTraced(res.Scenario, target, f); err != nil {
		return "", err
	}
	return path, nil
}
