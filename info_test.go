package tcpls

import (
	"io"
	"runtime"
	"testing"
)

func TestConnInfo(t *testing.T) {
	ln := startServer(t, &Config{}, echoHandler)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Move some data so the kernel has estimates.
	st, _ := sess.OpenStream()
	msg := make([]byte, 200_000)
	go st.Write(msg)
	if _, err := io.ReadFull(st, make([]byte, len(msg))); err != nil {
		t.Fatal(err)
	}

	info, err := sess.ConnInfo(0)
	if err != nil {
		t.Fatal(err)
	}
	if info.LocalAddr == "" || info.RemoteAddr == "" {
		t.Error("missing addresses")
	}
	if runtime.GOOS == "linux" {
		if !info.Kernel {
			t.Fatal("TCP_INFO not read on linux")
		}
		if info.SndCwnd == 0 || info.SndMSS == 0 {
			t.Errorf("implausible kernel info: cwnd=%d mss=%d", info.SndCwnd, info.SndMSS)
		}
		if info.RTT <= 0 {
			t.Errorf("rtt = %v", info.RTT)
		}
	}
	if _, err := sess.ConnInfo(99); err == nil {
		t.Error("unknown conn accepted")
	}
}
