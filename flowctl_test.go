// Flow-control integration tests: the wrapper's receive-buffer
// backpressure over real sockets, and the chaos case the bounds exist
// for — one of three coupled paths stalling mid-transfer while both
// peers' memory stays capped and goodput continues.
package tcpls

import (
	"bytes"
	"context"
	"crypto/sha256"
	"io"
	"runtime"
	"testing"
	"time"

	"tcpls/internal/netem"
)

// TestRecvBackpressureBoundsMemory writes far more than the receiver's
// configured buffer while the receiving application sits idle. The
// readLoop must park (closing the TCP window) instead of buffering the
// whole transfer or killing the session with ErrRecvBufferFull, and the
// transfer must complete byte-exact once the reader drains.
func TestRecvBackpressureBoundsMemory(t *testing.T) {
	const (
		recvCap = 256 << 10
		total   = 4 << 20
	)
	started := make(chan *Session, 1)
	release := make(chan struct{})
	gotHash := make(chan [32]byte, 1)
	srv := startChaosServer(t, &Config{MaxRecvBufferBytes: recvCap}, func(sess *Session) {
		st, err := sess.AcceptStream(context.Background())
		if err != nil {
			return
		}
		started <- sess
		<-release // sit on the data: backpressure, not reading
		h := sha256.New()
		if _, err := io.Copy(h, st); err != nil {
			return
		}
		var sum [32]byte
		copy(sum[:], h.Sum(nil))
		gotHash <- sum
	})

	sess, err := Dial("tcp", srv.ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}

	writeDone := make(chan error, 1)
	h := sha256.New()
	go func() {
		chunk := make([]byte, 64<<10)
		for sent := 0; sent < total; sent += len(chunk) {
			for j := range chunk {
				chunk[j] = byte(sent + j)
			}
			h.Write(chunk)
			if _, err := st.Write(chunk); err != nil {
				writeDone <- err
				return
			}
		}
		writeDone <- st.Close()
	}()

	var ssess *Session
	select {
	case ssess = <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("server never accepted the stream")
	}

	// Give backpressure time to bite, then check the receiver is holding
	// a bounded buffer — not the whole 4 MiB — and reports it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := ssess.Metrics()
		if m.FlowctlLimits >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("receive buffer never hit its cap (buffered %d)", m.Stats.BytesReceived)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The readLoop parks right after the chunk that crossed the cap, so
	// the buffered high-water mark is cap + one socket read (readBufLen).
	if buffered := int(ssess.Metrics().Stats.BytesReceived); buffered > recvCap+readBufLen {
		t.Fatalf("receiver buffered %d bytes against a %d cap", buffered, recvCap)
	}

	close(release) // reader drains; the parked readLoop must wake
	if err := <-writeDone; err != nil {
		t.Fatalf("writer failed under backpressure: %v", err)
	}
	var want [32]byte
	copy(want[:], h.Sum(nil))
	select {
	case got := <-gotHash:
		if got != want {
			t.Fatalf("transfer corrupted: hash %x, want %x", got, want)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server never finished reading after release")
	}
}

// TestChaosStalledPathBoundedMemory is the acceptance test for the
// memory bounds: a coupled upload spread over three shaped relay paths,
// one of which freezes mid-record partway in. The receiver's reorder
// heap must hit its cap and declare the silent path suspect (well before
// the user-timeout backstop), the resulting failover must keep goodput
// flowing, and both peers' buffers must stay bounded while the full
// transfer lands byte-exact.
func TestChaosStalledPathBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test needs real time")
	}
	baseGoroutines := runtime.NumGoroutine()

	const (
		total      = 4 << 20
		reorderCap = 128 << 10
		retxBudget = 1 << 20
	)
	gotHash := make(chan [32]byte, 1)
	scfg := &Config{
		EnableFailover:  true,
		AckPeriod:       4,
		UserTimeout:     3 * time.Second, // backstop; the reorder cap must fire first
		MaxReorderBytes: reorderCap,
	}
	srv := startChaosServer(t, scfg, func(sess *Session) {
		// Three coupled streams (tagged A/B/C) and one result stream
		// (tagged 'R'); accept order races across paths, so classify by
		// tag.
		var res *Stream
		for i := 0; i < 4; i++ {
			st, err := sess.AcceptStream(context.Background())
			if err != nil {
				return
			}
			tag := make([]byte, 1)
			if _, err := st.Read(tag); err != nil {
				return
			}
			if tag[0] == 'R' {
				res = st
				continue
			}
			if err := sess.Couple(st); err != nil {
				return
			}
		}
		h := sha256.New()
		buf := make([]byte, 64<<10)
		for received := 0; received < total; {
			n, err := sess.ReadCoupled(buf)
			if err != nil {
				return
			}
			h.Write(buf[:n])
			received += n
		}
		var sum [32]byte
		copy(sum[:], h.Sum(nil))
		gotHash <- sum
		res.Write(sum[:])
		res.Close()
	})

	prof := netem.Profile{RateBps: 60e6, Delay: 2 * time.Millisecond}
	relays := make([]*netem.Relay, 3)
	for i := range relays {
		r, err := netem.NewRelay(srv.ln.Addr().String(), prof, prof)
		if err != nil {
			t.Fatal(err)
		}
		relays[i] = r
		defer r.Close()
	}

	ccfg := &Config{
		ServerName:         "test.server",
		EnableFailover:     true,
		AckPeriod:          4,
		UserTimeout:        3 * time.Second,
		MaxRetransmitBytes: retxBudget,
	}
	sess, err := Dial("tcp", relays[0].Addr(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	conns := []uint32{0}
	for _, r := range relays[1:] {
		id, err := sess.JoinPath("tcp", r.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, id)
	}
	var streams []*Stream
	for i, cid := range conns {
		st, err := sess.OpenStreamOn(cid)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Write([]byte{'A' + byte(i)}); err != nil {
			t.Fatal(err)
		}
		streams = append(streams, st)
	}
	if err := sess.Couple(streams...); err != nil {
		t.Fatal(err)
	}
	res, err := sess.OpenStreamOn(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Write([]byte{'R'}); err != nil {
		t.Fatal(err)
	}
	// Nothing more goes out on res; the FIN prompts a final ack so the
	// record doesn't hold a connection "active" into the user timeout.
	res.Close()

	writeDone := make(chan error, 1)
	wantHash := make(chan [32]byte, 1)
	go func() {
		h := sha256.New()
		chunk := make([]byte, 32<<10)
		for i, sent := 0, 0; sent < total; i++ {
			for j := range chunk {
				chunk[j] = byte(i + j)
			}
			h.Write(chunk)
			if _, err := sess.WriteCoupled(chunk); err != nil {
				writeDone <- err
				return
			}
			sent += len(chunk)
			time.Sleep(2 * time.Millisecond) // span the stall window
		}
		var sum [32]byte
		copy(sum[:], h.Sum(nil))
		wantHash <- sum
		writeDone <- nil
	}()

	// Freeze the middle path mid-transfer: sockets stay open, bytes stop.
	time.Sleep(150 * time.Millisecond)
	relays[1].Stall()

	select {
	case err := <-writeDone:
		if err != nil {
			t.Fatalf("coupled writer: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("writer stuck: goodput did not survive the stall")
	}
	want := <-wantHash
	// Finish the coupled streams: the FINs trigger final acks, draining
	// the retransmit buffers so idle connections stop counting as
	// "active" for the user timeout.
	for _, st := range streams {
		st.Close()
	}
	select {
	case got := <-gotHash:
		if got != want {
			t.Fatalf("transfer corrupted: server hash %x, want %x", got, want)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server never finished the coupled read")
	}
	// Round-trip the hash on the result stream too: the control path must
	// also have survived the stall.
	echo := make([]byte, sha256.Size)
	if _, err := io.ReadFull(res, echo); err != nil {
		t.Fatalf("result stream after stall: %v", err)
	}
	if !bytes.Equal(echo, want[:]) {
		t.Fatalf("result stream echoed %x, want %x", echo, want)
	}

	// Memory bounds, the point of the exercise. The receiver's heap may
	// overshoot the cap by what the live paths deliver between the trip
	// and the failover replay filling the gap — a few RTTs of in-flight
	// data — but nowhere near the multi-megabyte stall window.
	srv.mu.Lock()
	ssess := srv.ss[0]
	srv.mu.Unlock()
	sm := ssess.Metrics()
	if sm.FlowctlLimits < 1 {
		t.Fatalf("receiver reorder cap never tripped (peak %d, cap %d)",
			sm.ReorderBytesPeak, reorderCap)
	}
	if sm.ReorderBytesPeak < reorderCap {
		t.Fatalf("reorder peak %d below the %d cap yet the limit tripped", sm.ReorderBytesPeak, reorderCap)
	}
	if sm.ReorderBytesPeak > 1<<20 {
		t.Fatalf("reorder peak %d: stall window was not bounded by the %d cap",
			sm.ReorderBytesPeak, reorderCap)
	}
	if sm.ReorderBytes != 0 {
		t.Fatalf("reorder heap still holds %d bytes after a complete transfer", sm.ReorderBytes)
	}
	cm := sess.Metrics()
	// Per-stream budget; three coupled streams plus slack for records
	// acked but not yet processed.
	if cm.RetransmitBytesPeak > 3*retxBudget {
		t.Fatalf("sender retransmit peak %d against a per-stream budget of %d",
			cm.RetransmitBytesPeak, retxBudget)
	}
	t.Logf("bounded: reorder peak %d (cap %d), retransmit peak %d (budget %d), flowctl trips %d, solicits %d",
		sm.ReorderBytesPeak, reorderCap, cm.RetransmitBytesPeak, retxBudget,
		sm.FlowctlLimits+cm.FlowctlLimits, cm.AckSolicits)

	relays[1].Unstall()
	sess.Close()
	srv.Close()
	for _, r := range relays {
		r.Close()
	}
	checkGoroutines(t, baseGoroutines)
}
