package tcpls

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"runtime"
	"testing"
	"time"

	"tcpls/internal/core"
	"tcpls/internal/handshake"
	"tcpls/internal/record"
	"tcpls/internal/sched"
	"tcpls/internal/testutil"
)

// newBareEngine builds a core engine with deterministic secrets for
// white-box tests that never touch a socket.
func newBareEngine(t *testing.T) *core.Session {
	t.Helper()
	suite, err := record.SuiteByID(record.TLSAES128GCMSHA256)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(tag byte) []byte {
		b := make([]byte, 32)
		for i := range b {
			b[i] = tag
		}
		return b
	}
	sec := handshake.Secrets{Suite: suite, ClientApp: mk(0xc1), ServerApp: mk(0x51)}
	return core.NewSession(core.RoleClient, sec, core.Config{})
}

func TestReconnectDelayBounds(t *testing.T) {
	rc := ReconnectConfig{BaseDelay: 40 * time.Millisecond, MaxDelay: 200 * time.Millisecond}.withDefaults()
	if d := reconnectDelay(rc, 1); d != 0 {
		t.Fatalf("first attempt delay = %v, want immediate", d)
	}
	for attempt := 2; attempt <= 12; attempt++ {
		want := rc.BaseDelay
		for i := 2; i < attempt; i++ {
			want *= 2
			if want >= rc.MaxDelay {
				want = rc.MaxDelay
				break
			}
		}
		for trial := 0; trial < 20; trial++ {
			d := reconnectDelay(rc, attempt)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d delay = %v, want in [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}

// TestReconnectDelaySeedReproducible: with a seeded Jitter source the
// whole backoff sequence replays exactly — the determinism hook the
// fleet harness threads its scenario seed through — while distinct
// seeds actually diverge (the jitter is real, not a constant).
func TestReconnectDelaySeedReproducible(t *testing.T) {
	mk := func(seed int64) ReconnectConfig {
		return ReconnectConfig{
			BaseDelay: 40 * time.Millisecond,
			MaxDelay:  200 * time.Millisecond,
			Jitter:    rand.New(rand.NewSource(seed)),
		}.withDefaults()
	}
	seq := func(rc ReconnectConfig) []time.Duration {
		var out []time.Duration
		for attempt := 1; attempt <= 10; attempt++ {
			out = append(out, reconnectDelay(rc, attempt))
		}
		return out
	}
	a, b := seq(mk(7)), seq(mk(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i+1, a[i], b[i])
		}
	}
	c := seq(mk(8))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
	// The seeded path honors the same [d/2, d] bounds as the global one.
	rc := mk(7)
	for attempt := 2; attempt <= 10; attempt++ {
		want := rc.BaseDelay
		for i := 2; i < attempt; i++ {
			want *= 2
			if want >= rc.MaxDelay {
				want = rc.MaxDelay
				break
			}
		}
		if d := reconnectDelay(rc, attempt); d < want/2 || d > want {
			t.Fatalf("seeded attempt %d delay = %v, want in [%v, %v]", attempt, d, want/2, want)
		}
	}
}

func TestReconnectConfigDefaults(t *testing.T) {
	rc := ReconnectConfig{}.withDefaults()
	if rc.MaxAttempts != defaultReconnectAttempts || rc.BaseDelay != defaultReconnectBase ||
		rc.MaxDelay != defaultReconnectMax || rc.Deadline != defaultReconnectDeadline {
		t.Fatalf("zero-value defaults wrong: %+v", rc)
	}
	// MaxDelay never undercuts BaseDelay.
	rc = ReconnectConfig{BaseDelay: time.Second, MaxDelay: time.Millisecond}.withDefaults()
	if rc.MaxDelay != time.Second {
		t.Fatalf("MaxDelay not raised to BaseDelay: %v", rc.MaxDelay)
	}
}

func TestSessionDeadErrorUnwraps(t *testing.T) {
	err := error(&SessionDeadError{Attempts: 3, LastErr: io.ErrUnexpectedEOF})
	if !errors.Is(err, ErrSessionDead) {
		t.Fatal("SessionDeadError does not match ErrSessionDead")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatal("SessionDeadError hides the last dial error")
	}
	var sde *SessionDeadError
	if !errors.As(err, &sde) || sde.Attempts != 3 {
		t.Fatal("errors.As lost the attempt count")
	}
}

func TestCandidateAddrs(t *testing.T) {
	s := &Session{}
	s.rememberAddrLocked("127.0.0.1:4443")
	s.rememberAddrLocked("127.0.0.1:4443") // duplicate collapses
	s.rememberAddrLocked("pipe")           // net.Pipe-style, not dialable
	s.rememberAddrLocked("127.0.0.2:5000")
	s.peerAddrs = []net.Addr{
		&net.TCPAddr{IP: net.ParseIP("10.0.0.9")},              // ADD_ADDR: port patched in
		&net.TCPAddr{IP: net.ParseIP("127.0.0.2"), Port: 5000}, // duplicate of a dialed addr
	}
	got := s.candidateAddrsLocked()
	want := []string{"127.0.0.1:4443", "127.0.0.2:5000", "10.0.0.9:4443"}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
}

func TestPickFailoverTargetPrefersLowSRTT(t *testing.T) {
	now := time.Now()
	s := &Session{
		metrics: sched.NewMetrics(),
		conns:   make(map[uint32]*pathConn),
		engine:  newBareEngine(t),
	}
	for id := uint32(0); id < 3; id++ {
		if err := s.engine.AddConnection(id, now); err != nil {
			t.Fatal(err)
		}
	}
	// Conn 1: 50ms SRTT. Conn 2: 10ms. Conn 0: never sampled.
	s.metrics.OnSent(1, 1000)
	s.metrics.OnAcked(1, 1000, 50*time.Millisecond, now)
	s.metrics.OnSent(2, 1000)
	s.metrics.OnAcked(2, 1000, 10*time.Millisecond, now)

	if id, ok := s.pickFailoverTargetLocked(map[uint32]bool{}); !ok || id != 2 {
		t.Fatalf("pick = %d/%v, want lowest-SRTT conn 2", id, ok)
	}
	if id, ok := s.pickFailoverTargetLocked(map[uint32]bool{2: true}); !ok || id != 1 {
		t.Fatalf("pick excluding 2 = %d/%v, want 1", id, ok)
	}
	// Unmeasured paths rank after measured ones but are still usable.
	if id, ok := s.pickFailoverTargetLocked(map[uint32]bool{1: true, 2: true}); !ok || id != 0 {
		t.Fatalf("pick excluding 1,2 = %d/%v, want 0", id, ok)
	}
	if _, ok := s.pickFailoverTargetLocked(map[uint32]bool{0: true, 1: true, 2: true}); ok {
		t.Fatal("pick with all tried must report no target")
	}
}

// TestAutoFailoverEmitsEvents: a conn death with a live sibling emits
// EventConnDown then EventFailover (satellite: no more silent parking).
func TestAutoFailoverEmitsEvents(t *testing.T) {
	scfg := &Config{EnableFailover: true, AckPeriod: 4, NumCookies: 4}
	ln := startServer(t, scfg, echoHandler)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server", EnableFailover: true, AckPeriod: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.JoinPath("tcp", ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}

	sess.mu.Lock()
	pc0 := sess.conns[0]
	sess.mu.Unlock()
	pc0.nc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	seen := make(map[SessionEventKind]bool)
	for !seen[EventFailover] {
		ev, err := sess.WaitEvent(ctx)
		if err != nil {
			t.Fatalf("waiting for failover events (saw %v): %v", seen, err)
		}
		seen[ev.Kind] = true
	}
	if !seen[EventConnDown] {
		t.Fatal("EventFailover emitted without EventConnDown")
	}

	// The failed-over stream still works.
	if _, err := st.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}
}

// TestReconnectAfterTotalLoss: a single-path session loses its only
// connection; the recovery supervisor re-dials the remembered address
// through the join path and the stream resumes transparently.
func TestReconnectAfterTotalLoss(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	scfg := &Config{EnableFailover: true, AckPeriod: 4, NumCookies: 8}
	srv := startChaosServer(t, scfg, echoHandler)
	sess, err := Dial("tcp", srv.ln.Addr().String(), &Config{
		ServerName: "test.server", EnableFailover: true, AckPeriod: 4,
		Reconnect: ReconnectConfig{
			MaxAttempts: 20,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
			Deadline:    10 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("before")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}

	// Kill the only path.
	sess.mu.Lock()
	pc0 := sess.conns[0]
	sess.mu.Unlock()
	pc0.nc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	seen := make(map[SessionEventKind]bool)
	for !seen[EventReconnected] {
		ev, err := sess.WaitEvent(ctx)
		if err != nil {
			t.Fatalf("waiting for reconnection (saw %v): %v", seen, err)
		}
		seen[ev.Kind] = true
	}
	for _, k := range []SessionEventKind{EventConnDown, EventReconnecting} {
		if !seen[k] {
			t.Fatalf("reconnected without %v", k)
		}
	}

	if _, err := st.Write([]byte("after!")); err != nil {
		t.Fatalf("write after reconnect: %v", err)
	}
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatalf("read after reconnect: %v", err)
	}
	if string(buf) != "after!" {
		t.Fatalf("echo after reconnect = %q", buf)
	}

	// Reconnection must not strand supervisor or I/O goroutines.
	sess.Close()
	srv.Close()
	testutil.CheckGoroutines(t, baseGoroutines)
}

// TestReconnectDisabledDiesWithErrSessionDead: with the supervisor
// disabled, total path loss parks until the deadline and then every
// blocked or new call reports the typed terminal error.
func TestReconnectDisabledDiesWithErrSessionDead(t *testing.T) {
	scfg := &Config{EnableFailover: true, AckPeriod: 4, NumCookies: 4}
	ln := startServer(t, scfg, echoHandler)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server", EnableFailover: true, AckPeriod: 4,
		Reconnect: ReconnectConfig{Disabled: true, Deadline: 400 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}

	sess.mu.Lock()
	pc0 := sess.conns[0]
	sess.mu.Unlock()
	pc0.nc.Close()

	start := time.Now()
	_, rerr := st.Read(buf) // blocks until the deadline declares death
	if !errors.Is(rerr, ErrSessionDead) {
		t.Fatalf("blocked Read after budget exhaustion = %v, want ErrSessionDead", rerr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("death took %v, deadline was 400ms", elapsed)
	}
	if _, werr := st.Write([]byte("y")); !errors.Is(werr, ErrSessionDead) {
		t.Fatalf("Write on dead session = %v, want ErrSessionDead", werr)
	}
	if _, oerr := sess.OpenStream(); !errors.Is(oerr, ErrSessionDead) {
		t.Fatalf("OpenStream on dead session = %v, want ErrSessionDead", oerr)
	}

	sawFailed := false
	for _, ev := range sess.Events() {
		if ev.Kind == EventRecoveryFailed {
			sawFailed = true
			if !errors.Is(ev.Err, ErrSessionDead) {
				t.Fatalf("EventRecoveryFailed.Err = %v", ev.Err)
			}
		}
	}
	if !sawFailed {
		t.Fatal("no EventRecoveryFailed emitted before death")
	}
}

// TestOnEventCallback: Config.OnEvent observes the lifecycle without
// polling.
func TestOnEventCallback(t *testing.T) {
	scfg := &Config{EnableFailover: true, AckPeriod: 4, NumCookies: 8}
	ln := startServer(t, scfg, echoHandler)
	evCh := make(chan SessionEvent, 64)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server", EnableFailover: true, AckPeriod: 4,
		Reconnect: ReconnectConfig{
			MaxAttempts: 20, BaseDelay: 10 * time.Millisecond,
			MaxDelay: 50 * time.Millisecond, Deadline: 10 * time.Second,
		},
		OnEvent: func(ev SessionEvent) { evCh <- ev },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}

	sess.mu.Lock()
	pc0 := sess.conns[0]
	sess.mu.Unlock()
	pc0.nc.Close()

	deadline := time.After(8 * time.Second)
	for {
		select {
		case ev := <-evCh:
			if ev.Kind == EventReconnected {
				return
			}
		case <-deadline:
			t.Fatal("OnEvent never delivered EventReconnected")
		}
	}
}
