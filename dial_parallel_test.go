package tcpls

import (
	"io"
	"net"
	"testing"
	"time"
)

func TestDialParallelPicksWorkingAddress(t *testing.T) {
	ln := startServer(t, &Config{}, echoHandler)

	// A dead address (nothing listens) plus the live server: the race
	// must settle on the live one.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close() // now refuses connections

	sess, err := DialParallel("tcp",
		[]string{deadAddr, ln.Addr().String()},
		5*time.Second,
		&Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	st.Write([]byte("race"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "race" {
		t.Fatalf("echo %q", buf)
	}
}

func TestDialParallelAllFail(t *testing.T) {
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr().String()
	dead.Close()
	if _, err := DialParallel("tcp", []string{addr, addr}, 2*time.Second, &Config{}); err == nil {
		t.Fatal("expected failure when every address is dead")
	}
}

func TestDialParallelNoAddrs(t *testing.T) {
	if _, err := DialParallel("tcp", nil, time.Second, &Config{}); err == nil {
		t.Fatal("expected error for empty address list")
	}
}

func TestDialParallelBothAlive(t *testing.T) {
	// Two live listeners for the same logical service: exactly one
	// session survives, the loser is closed cleanly.
	ln1 := startServer(t, &Config{}, echoHandler)
	ln2 := startServer(t, &Config{}, echoHandler)
	sess, err := DialParallel("tcp",
		[]string{ln1.Addr().String(), ln2.Addr().String()},
		5*time.Second, &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	st.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}
}
