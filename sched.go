package tcpls

import (
	"time"

	"tcpls/internal/sched"
)

// PathScheduler decides which path carries each coupled record — the
// paper's application-exposed sender-side record scheduler (§3.3.3),
// upgraded from a stateless closure to a stateful interface fed by the
// path-metrics engine. See internal/sched for the interface contract.
type PathScheduler = sched.Scheduler

// PathView is the per-path metrics snapshot handed to
// PathScheduler.Pick: fused SRTT/RTTVar, bytes in flight, loss count,
// and the EWMA delivery rate.
type PathView = sched.PathView

// PathStats is an exported snapshot of one path's fused metrics.
type PathStats = sched.PathStats

// PickAll, returned from PathScheduler.Pick, duplicates the record
// across every path (the Redundant policy).
const PickAll = sched.PickAll

// Built-in scheduler constructors. Each call returns a fresh instance;
// schedulers are stateful and must not be shared across sessions.
var (
	// SchedRoundRobin cycles paths by record index (the default).
	SchedRoundRobin = sched.RoundRobin
	// SchedLowestRTT prefers the path with the smallest fused SRTT.
	SchedLowestRTT = sched.LowestRTT
	// SchedWeightedRate splits records proportionally to delivery rate
	// — the bandwidth-aggregation workhorse.
	SchedWeightedRate = sched.WeightedRate
	// SchedRedundant seals every record on every path; the receiver's
	// aggregation-sequence reordering deduplicates.
	SchedRedundant = sched.Redundant
)

// SetPathScheduler installs a stateful multipath record scheduler for
// the session's coupled streams and starts the kernel TCP_INFO
// refresher that keeps its path metrics warm. Use the Sched*
// constructors (or Config.Scheduler at session creation), the names in
// internal/sched, or any PathScheduler implementation.
func (s *Session) SetPathScheduler(ps PathScheduler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.engine.SetPathScheduler(ps)
	if ps != nil {
		s.startPathMetricsLoopLocked()
	}
}

// PathMetrics returns the fused metrics snapshot for one connection —
// SRTT/RTTVar, bytes in flight, losses, and delivery rate as the
// scheduler sees them. ok is false until the path has produced any
// signal.
func (s *Session) PathMetrics(connID uint32) (PathStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics.Snapshot(connID)
}

// startPathMetricsLoopLocked launches the kernel refresher once. The
// caller holds s.mu.
func (s *Session) startPathMetricsLoopLocked() {
	if s.metricsLoopOn || s.closed {
		return
	}
	s.metricsLoopOn = true
	interval := s.cfg.PathMetricsInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	s.wg.Add(1)
	go s.pathMetricsLoop(interval)
}

// pathMetricsLoop periodically folds kernel TCP_INFO snapshots of every
// live connection into the path-metrics engine (§3.3.3's tcp_info
// plumbing) and emits path_metrics trace events with the fused view.
func (s *Session) pathMetricsLoop(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.timerStop:
			return
		case <-t.C:
			s.refreshPathMetrics()
		}
	}
}

// refreshPathMetrics reads TCP_INFO outside the session lock (it is a
// per-fd getsockopt) and folds the results in. On non-Linux platforms
// fillKernelInfo is a no-op and only ACK-driven metrics flow.
func (s *Session) refreshPathMetrics() {
	s.mu.Lock()
	type target struct {
		id uint32
		pc *pathConn
	}
	var targets []target
	for id, pc := range s.conns {
		if !pc.failed.Load() {
			targets = append(targets, target{id, pc})
		}
	}
	s.mu.Unlock()

	for _, tg := range targets {
		var info ConnInfo
		fillKernelInfo(tg.pc.nc, &info)
		if !info.Kernel {
			continue
		}
		// cwnd*mss/srtt approximates the first hop's sustainable rate —
		// a stand-in until end-to-end ACK samples exist.
		var rateHint float64
		if info.RTT > 0 {
			rateHint = float64(info.SndCwnd) * float64(info.SndMSS) / info.RTT.Seconds()
		}
		s.metrics.UpdateKernel(tg.id, info.RTT, info.RTTVar, rateHint)
	}

	s.mu.Lock()
	for _, tg := range targets {
		s.engine.NotePathMetrics(tg.id)
	}
	s.mu.Unlock()
}
