module tcpls

go 1.22
