// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Conventions: BenchmarkFigN* benches report the figure's headline
// quantity as a custom metric (Gbps, recovery seconds, completion
// seconds) so `go test -bench` output reads like the paper's results
// table. Time-domain figures run one full simulation per iteration.
package tcpls_test

import (
	"testing"
	"time"

	"tcpls/internal/cc"
	"tcpls/internal/ebpfvm"
	"tcpls/internal/experiments"
	"tcpls/internal/miniquic"
	"tcpls/internal/netem"
)

// --- Table 1 ---

func BenchmarkTable1Services(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table1(); len(rows) != 7 {
			b.Fatal("table generation failed")
		}
	}
}

// --- Fig. 7: one bench per bar (64 MiB per iteration) ---

const fig7Bytes = 64 << 20

// benchPipeline measures a single Fig. 7 stack without running the
// others.
func benchPipeline(b *testing.B, run func(bytes int) error) {
	b.SetBytes(fig7Bytes)
	for i := 0; i < b.N; i++ {
		if err := run(fig7Bytes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7TLSTCP(b *testing.B) {
	benchPipeline(b, func(n int) error {
		_, err := experiments.TLSTCPPipeline(n, 1500)
		return err
	})
}

func BenchmarkFig7TCPLS(b *testing.B) {
	benchPipeline(b, func(n int) error {
		_, err := experiments.TCPLSPipeline(n, false, false)
		return err
	})
}

func BenchmarkFig7TCPLSFailover(b *testing.B) {
	benchPipeline(b, func(n int) error {
		_, err := experiments.TCPLSPipeline(n, true, false)
		return err
	})
}

func BenchmarkFig7TCPLSMultipath(b *testing.B) {
	benchPipeline(b, func(n int) error {
		_, err := experiments.TCPLSPipeline(n, true, true)
		return err
	})
}

func benchQUIC(b *testing.B, cfg miniquic.Config) {
	p, err := miniquic.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 1<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Transfer(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Quicly(b *testing.B) { benchQUIC(b, miniquic.Quicly) }
func BenchmarkFig7MsQuic(b *testing.B) { benchQUIC(b, miniquic.MsQuic) }
func BenchmarkFig7Mvfst(b *testing.B)  { benchQUIC(b, miniquic.Mvfst) }

// --- Figs. 8-13: one simulation per iteration ---

func BenchmarkFig8Failover(b *testing.B) {
	var rec time.Duration
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8("blackhole")
		if err != nil {
			b.Fatal(err)
		}
		rec = r.TCPLSRecovery
	}
	b.ReportMetric(rec.Seconds(), "recovery-s")
}

func BenchmarkFig9RepeatedOutages(b *testing.B) {
	var done time.Duration
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		done = r.TCPLSDone
	}
	b.ReportMetric(done.Seconds(), "tcpls-done-s")
}

func BenchmarkFig10Migration(b *testing.B) {
	var done time.Duration
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		done = r.Done
	}
	b.ReportMetric(done.Seconds(), "done-s")
}

func BenchmarkFig11Aggregation(b *testing.B) {
	var mbps float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(16368)
		if err != nil {
			b.Fatal(err)
		}
		mbps = r.TCPLS.MeanBetween(9*time.Second, 16*time.Second)
	}
	b.ReportMetric(mbps, "agg-Mbps")
}

func BenchmarkFig13SmallRecords(b *testing.B) {
	var mbps float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(1500)
		if err != nil {
			b.Fatal(err)
		}
		mbps = r.TCPLS.MeanBetween(9*time.Second, 16*time.Second)
	}
	b.ReportMetric(mbps, "agg-Mbps")
}

func BenchmarkFig12EbpfCC(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Swapped {
			b.Fatal("program not attached")
		}
		share = r.Vegas.MeanBetween(40*time.Second, 50*time.Second)
	}
	b.ReportMetric(share, "post-swap-Mbps")
}

// --- Ablations (DESIGN.md §5) ---

// X3: failover throughput vs acknowledgment period (§4.2's "optimal
// acknowledgment frequency" future work).
func BenchmarkAckFrequency(b *testing.B) {
	for _, period := range []int{1, 4, 16, 64} {
		b.Run(benchName("period", period), func(b *testing.B) {
			b.SetBytes(fig7Bytes)
			for i := 0; i < b.N; i++ {
				if _, err := experiments.TCPLSPipelineAck(fig7Bytes, period); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Scheduler ablation: round-robin vs pinned distribution over two conns.
func BenchmarkSchedulers(b *testing.B) {
	for _, sched := range []string{"roundrobin", "pinned"} {
		b.Run(sched, func(b *testing.B) {
			b.SetBytes(fig7Bytes)
			for i := 0; i < b.N; i++ {
				if _, err := experiments.TCPLSPipelineSched(fig7Bytes, sched); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Path-scheduler ablation: the metrics-driven schedulers against
// round-robin over two netem paths with 10x RTT asymmetry (2 ms vs
// 20 ms one-way at equal 40 Mbps rate). Each iteration is one full
// coupled download through real loopback TCP, so the goodput metric
// reflects handshake, ACK-driven metric learning, and reordering cost.
func BenchmarkPathSchedulers(b *testing.B) {
	fast := netem.Profile{RateBps: 40_000_000, Delay: 2 * time.Millisecond}
	slow := netem.Profile{RateBps: 40_000_000, Delay: 20 * time.Millisecond}
	const total = 1 << 20
	for _, name := range []string{"roundrobin", "lowrtt", "rate"} {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(total)
			var bps float64
			for i := 0; i < b.N; i++ {
				bps = schedTransfer(b, name, total, fast, slow)
			}
			b.ReportMetric(bps/1e6, "goodput-Mbps")
		})
	}
}

// Zero-copy delivery vs buffered Read (the §4.1 design claim).
func BenchmarkZeroCopy(b *testing.B) {
	for _, mode := range []string{"callback", "buffered"} {
		b.Run(mode, func(b *testing.B) {
			b.SetBytes(fig7Bytes)
			for i := 0; i < b.N; i++ {
				if _, err := experiments.TCPLSPipelineDelivery(fig7Bytes, mode == "callback"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// VM-hosted vs native congestion controller (the §4.4 substitution's
// overhead).
func BenchmarkCCNativeVsBytecode(b *testing.B) {
	b.Run("native-cubic", func(b *testing.B) {
		a := cc.NewCubic(cc.DefaultMSS)
		for i := 0; i < b.N; i++ {
			a.OnAck(cc.DefaultMSS, 20*time.Millisecond, time.Duration(i)*time.Millisecond)
		}
	})
	b.Run("bytecode-cubic", func(b *testing.B) {
		p, err := ebpfvm.NewCCProgram("cubic", ebpfvm.Program("cubic"), cc.DefaultMSS)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			p.OnAck(cc.DefaultMSS, 20*time.Millisecond, time.Duration(i)*time.Millisecond)
		}
		if p.Err() != nil {
			b.Fatal(p.Err())
		}
	})
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
